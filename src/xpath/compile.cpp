#include <string>
#include <vector>

#include "ast.hpp"
#include "lexer.hpp"
#include "xaon/util/arena.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/sync.hpp"
#include "xaon/xpath/xpath.hpp"

/// \file compile.cpp
/// Recursive-descent parser: token stream -> arena AST.

namespace xaon::xpath {

namespace detail {

/// A compiled expression: the AST plus the arena that owns it.
struct Compiled {
  util::Arena arena{4 * 1024};
  const Expr* root = nullptr;
  std::string expression;
};

namespace {

struct FnSig {
  // xlint: allow(view-member): views string literals (static storage)
  std::string_view name;
  Fn fn;
  int min_args;
  int max_args;  // -1: unbounded
};

constexpr FnSig kFunctions[] = {
    {"last", Fn::kLast, 0, 0},
    {"position", Fn::kPosition, 0, 0},
    {"count", Fn::kCount, 1, 1},
    {"local-name", Fn::kLocalName, 0, 1},
    {"name", Fn::kName, 0, 1},
    {"namespace-uri", Fn::kNamespaceUri, 0, 1},
    {"string", Fn::kString, 0, 1},
    {"concat", Fn::kConcat, 2, -1},
    {"starts-with", Fn::kStartsWith, 2, 2},
    {"contains", Fn::kContains, 2, 2},
    {"substring-before", Fn::kSubstringBefore, 2, 2},
    {"substring-after", Fn::kSubstringAfter, 2, 2},
    {"substring", Fn::kSubstring, 2, 3},
    {"string-length", Fn::kStringLength, 0, 1},
    {"normalize-space", Fn::kNormalizeSpace, 0, 1},
    {"translate", Fn::kTranslate, 3, 3},
    {"boolean", Fn::kBoolean, 1, 1},
    {"not", Fn::kNot, 1, 1},
    {"true", Fn::kTrue, 0, 0},
    {"false", Fn::kFalse, 0, 0},
    {"number", Fn::kNumber, 0, 1},
    {"sum", Fn::kSum, 1, 1},
    {"floor", Fn::kFloor, 1, 1},
    {"ceiling", Fn::kCeiling, 1, 1},
    {"round", Fn::kRound, 1, 1},
};

struct AxisName {
  // xlint: allow(view-member): views string literals (static storage)
  std::string_view name;
  Axis axis;
};

constexpr AxisName kAxes[] = {
    {"child", Axis::kChild},
    {"descendant", Axis::kDescendant},
    {"descendant-or-self", Axis::kDescendantOrSelf},
    {"self", Axis::kSelf},
    {"parent", Axis::kParent},
    {"ancestor", Axis::kAncestor},
    {"ancestor-or-self", Axis::kAncestorOrSelf},
    {"attribute", Axis::kAttribute},
    {"following-sibling", Axis::kFollowingSibling},
    {"preceding-sibling", Axis::kPrecedingSibling},
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, Compiled& out,
         const NamespaceBindings& ns)
      : tokens_(std::move(tokens)), out_(out), ns_(ns) {}

  const Expr* parse(CompileError* error) {
    Expr* e = parse_or();
    if (e != nullptr && !at(Tok::kEnd)) {
      fail("unexpected trailing tokens");
      e = nullptr;
    }
    if (e == nullptr && error != nullptr) *error = error_;
    return e;
  }

 private:
  // --- token helpers ---
  const Token& cur() const { return tokens_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }
  bool accept(Tok k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Expr* fail(std::string msg) {
    if (error_.empty()) {
      error_.offset = cur().offset;
      error_.message = std::move(msg);
    }
    return nullptr;
  }

  Expr* make(ExprKind kind) {
    Expr* e = out_.arena.make<Expr>();
    e->kind = kind;
    return e;
  }
  Expr* binary(ExprKind kind, Expr* lhs, Expr* rhs) {
    if (lhs == nullptr || rhs == nullptr) return nullptr;
    Expr* e = make(kind);
    e->lhs = lhs;
    e->rhs = rhs;
    return e;
  }

  // --- grammar (standard XPath 1.0 precedence chain) ---
  Expr* parse_or() {
    Expr* e = parse_and();
    while (e != nullptr && accept(Tok::kOr)) e = binary(ExprKind::kOr, e, parse_and());
    return e;
  }
  Expr* parse_and() {
    Expr* e = parse_equality();
    while (e != nullptr && accept(Tok::kAnd)) {
      e = binary(ExprKind::kAnd, e, parse_equality());
    }
    return e;
  }
  Expr* parse_equality() {
    Expr* e = parse_relational();
    for (;;) {
      if (e == nullptr) return nullptr;
      if (accept(Tok::kEq)) {
        e = binary(ExprKind::kEq, e, parse_relational());
      } else if (accept(Tok::kNe)) {
        e = binary(ExprKind::kNe, e, parse_relational());
      } else {
        return e;
      }
    }
  }
  Expr* parse_relational() {
    Expr* e = parse_additive();
    for (;;) {
      if (e == nullptr) return nullptr;
      if (accept(Tok::kLt)) {
        e = binary(ExprKind::kLt, e, parse_additive());
      } else if (accept(Tok::kLe)) {
        e = binary(ExprKind::kLe, e, parse_additive());
      } else if (accept(Tok::kGt)) {
        e = binary(ExprKind::kGt, e, parse_additive());
      } else if (accept(Tok::kGe)) {
        e = binary(ExprKind::kGe, e, parse_additive());
      } else {
        return e;
      }
    }
  }
  Expr* parse_additive() {
    Expr* e = parse_multiplicative();
    for (;;) {
      if (e == nullptr) return nullptr;
      if (accept(Tok::kPlus)) {
        e = binary(ExprKind::kAdd, e, parse_multiplicative());
      } else if (accept(Tok::kMinus)) {
        e = binary(ExprKind::kSub, e, parse_multiplicative());
      } else {
        return e;
      }
    }
  }
  Expr* parse_multiplicative() {
    Expr* e = parse_unary();
    for (;;) {
      if (e == nullptr) return nullptr;
      // '*' is multiplication here only when followed by an operand —
      // the lexer keeps kStar ambiguous; at this position after a
      // complete operand it is multiplication.
      if (at(Tok::kStar)) {
        ++pos_;
        e = binary(ExprKind::kMul, e, parse_unary());
      } else if (accept(Tok::kDiv)) {
        e = binary(ExprKind::kDiv, e, parse_unary());
      } else if (accept(Tok::kMod)) {
        e = binary(ExprKind::kMod, e, parse_unary());
      } else {
        return e;
      }
    }
  }
  Expr* parse_unary() {
    int negs = 0;
    while (accept(Tok::kMinus)) ++negs;
    Expr* e = parse_union();
    if (e == nullptr) return nullptr;
    for (int i = 0; i < negs; ++i) {
      Expr* n = make(ExprKind::kNeg);
      n->lhs = e;
      e = n;
    }
    return e;
  }
  Expr* parse_union() {
    Expr* e = parse_path();
    while (e != nullptr && accept(Tok::kPipe)) {
      e = binary(ExprKind::kUnion, e, parse_path());
    }
    return e;
  }

  bool starts_location_path() const {
    switch (cur().kind) {
      case Tok::kSlash:
      case Tok::kSlashSlash:
      case Tok::kDot:
      case Tok::kDotDot:
      case Tok::kAt:
      case Tok::kName:
      case Tok::kAxisName:
      case Tok::kStar:
        return true;
      case Tok::kFuncName:
        // Node-type tests look like functions: text(), node(), ...
        return cur().text == "text" || cur().text == "node" ||
               cur().text == "comment" ||
               cur().text == "processing-instruction";
      default:
        return false;
    }
  }

  Expr* parse_path() {
    if (starts_location_path()) return parse_location_path(nullptr, false);
    // FilterExpr: primary expression, then optional predicates and path.
    Expr* primary = parse_primary();
    if (primary == nullptr) return nullptr;
    if (at(Tok::kLBracket) || at(Tok::kSlash) || at(Tok::kSlashSlash)) {
      // Wrap as a path with a base expression.
      std::vector<Expr*> preds;
      while (accept(Tok::kLBracket)) {
        Expr* p = parse_or();
        if (p == nullptr) return nullptr;
        if (!accept(Tok::kRBracket)) return fail("expected ']'");
        preds.push_back(p);
      }
      if (at(Tok::kSlash) || at(Tok::kSlashSlash)) {
        Expr* path = parse_location_path(primary, false);
        if (path != nullptr) attach_base_predicates(path, preds);
        return path;
      }
      if (!preds.empty()) {
        // Bare filter expression, e.g. (//a)[1].
        Expr* path = make(ExprKind::kPath);
        path->base = primary;
        attach_base_predicates(path, preds);
        path->n_steps = 0;
        return path;
      }
      return primary;
    }
    return primary;
  }

  void attach_base_predicates(Expr* path, const std::vector<Expr*>& preds) {
    path->n_base_predicates = static_cast<std::uint32_t>(preds.size());
    if (preds.empty()) return;
    path->base_predicates = out_.arena.make_array<Expr*>(preds.size());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      path->base_predicates[i] = preds[i];
    }
  }

  void attach_predicates(Step* step, const std::vector<Expr*>& preds) {
    step->n_predicates = static_cast<std::uint32_t>(preds.size());
    if (preds.empty()) return;
    step->predicates = out_.arena.make_array<Expr*>(preds.size());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      step->predicates[i] = preds[i];
    }
  }

  /// Parses a (possibly absolute) location path. `base` non-null makes
  /// this the trailing path of a filter expression.
  Expr* parse_location_path(Expr* base, bool) {
    Expr* path = make(ExprKind::kPath);
    path->base = base;
    std::vector<Step> steps;

    if (base == nullptr) {
      if (accept(Tok::kSlashSlash)) {
        path->absolute = true;
        Step s;
        s.axis = Axis::kDescendantOrSelf;
        s.test = NodeTestKind::kNode;
        steps.push_back(s);
      } else if (accept(Tok::kSlash)) {
        path->absolute = true;
        if (!starts_location_path()) {
          // Bare "/" selects the root.
          path->n_steps = 0;
          return path;
        }
      }
    } else {
      if (accept(Tok::kSlashSlash)) {
        Step s;
        s.axis = Axis::kDescendantOrSelf;
        s.test = NodeTestKind::kNode;
        steps.push_back(s);
      } else if (!accept(Tok::kSlash)) {
        return fail("expected '/' after filter expression");
      }
    }

    for (;;) {
      Step step;
      if (!parse_step(&step)) return nullptr;
      steps.push_back(step);
      if (accept(Tok::kSlashSlash)) {
        Step s;
        s.axis = Axis::kDescendantOrSelf;
        s.test = NodeTestKind::kNode;
        steps.push_back(s);
        continue;
      }
      if (accept(Tok::kSlash)) continue;
      break;
    }

    path->n_steps = static_cast<std::uint32_t>(steps.size());
    path->steps = out_.arena.make_array<Step>(steps.size());
    for (std::size_t i = 0; i < steps.size(); ++i) path->steps[i] = steps[i];
    return path;
  }

  bool parse_step(Step* out) {
    *out = Step{};
    if (accept(Tok::kDot)) {
      out->axis = Axis::kSelf;
      out->test = NodeTestKind::kNode;
      return true;
    }
    if (accept(Tok::kDotDot)) {
      out->axis = Axis::kParent;
      out->test = NodeTestKind::kNode;
      return true;
    }
    if (accept(Tok::kAt)) {
      out->axis = Axis::kAttribute;
    } else if (at(Tok::kAxisName)) {
      bool found = false;
      for (const AxisName& a : kAxes) {
        if (cur().text == a.name) {
          out->axis = a.axis;
          found = true;
          break;
        }
      }
      if (!found) {
        fail("unknown axis '" + std::string(cur().text) + "'");
        return false;
      }
      ++pos_;
      if (!accept(Tok::kColonColon)) {
        fail("expected '::'");
        return false;
      }
    }
    if (!parse_node_test(out)) return false;
    std::vector<Expr*> preds;
    while (accept(Tok::kLBracket)) {
      Expr* p = parse_or();
      if (p == nullptr) return false;
      if (!accept(Tok::kRBracket)) {
        fail("expected ']'");
        return false;
      }
      preds.push_back(p);
    }
    attach_predicates(out, preds);
    return true;
  }

  bool parse_node_test(Step* out) {
    if (at(Tok::kStar)) {
      ++pos_;
      out->test = NodeTestKind::kAnyName;
      return true;
    }
    if (at(Tok::kFuncName)) {
      const std::string_view t = cur().text;
      if (t == "text" || t == "node" || t == "comment" ||
          t == "processing-instruction") {
        ++pos_;
        if (!accept(Tok::kLParen)) {
          fail("expected '('");
          return false;
        }
        if (t == "processing-instruction" && at(Tok::kLiteral)) {
          // Target filter unsupported; accept and ignore the literal.
          ++pos_;
        }
        if (!accept(Tok::kRParen)) {
          fail("expected ')'");
          return false;
        }
        out->test = t == "text"      ? NodeTestKind::kText
                    : t == "node"    ? NodeTestKind::kNode
                    : t == "comment" ? NodeTestKind::kComment
                                     : NodeTestKind::kPi;
        return true;
      }
      fail("'" + std::string(t) + "' is not a node test");
      return false;
    }
    if (!at(Tok::kName)) {
      fail("expected node test");
      return false;
    }
    const std::string_view name = cur().text;
    ++pos_;
    const std::size_t colon = name.find(':');
    std::string_view prefix, local;
    if (colon == std::string_view::npos) {
      local = name;
    } else {
      prefix = name.substr(0, colon);
      local = name.substr(colon + 1);
    }
    if (local == "*") {
      out->test = NodeTestKind::kNsWildcard;
    } else {
      out->test = NodeTestKind::kName;
      out->local = out_.arena.intern(local);
    }
    // Resolve the prefix against the compile-time bindings. Unprefixed
    // names use the default ("" prefix) binding when present.
    std::string_view uri;
    bool bound = prefix.empty();  // unprefixed: null namespace by default
    for (const auto& [p, u] : ns_) {
      if (p == prefix) {
        uri = u;
        bound = true;
        break;
      }
    }
    if (!bound) {
      fail("unbound prefix '" + std::string(prefix) + "' in expression");
      return false;
    }
    out->ns_uri = uri.empty() ? std::string_view{} : out_.arena.intern(uri);
    return true;
  }

  Expr* parse_primary() {
    if (accept(Tok::kLParen)) {
      Expr* e = parse_or();
      if (e == nullptr) return nullptr;
      if (!accept(Tok::kRParen)) return fail("expected ')'");
      return e;
    }
    if (at(Tok::kLiteral)) {
      Expr* e = make(ExprKind::kLiteral);
      e->literal = out_.arena.intern(cur().text);
      ++pos_;
      return e;
    }
    if (at(Tok::kNumber)) {
      Expr* e = make(ExprKind::kNumber);
      e->number = cur().number;
      ++pos_;
      return e;
    }
    if (at(Tok::kFuncName)) {
      return parse_function();
    }
    return fail("expected expression");
  }

  Expr* parse_function() {
    const std::string_view name = cur().text;
    const std::size_t name_offset = cur().offset;
    ++pos_;
    const FnSig* sig = nullptr;
    for (const FnSig& f : kFunctions) {
      if (f.name == name) {
        sig = &f;
        break;
      }
    }
    if (sig == nullptr) {
      error_.offset = name_offset;
      error_.message = "unknown function '" + std::string(name) + "'";
      return nullptr;
    }
    if (!accept(Tok::kLParen)) return fail("expected '('");
    std::vector<Expr*> args;
    if (!at(Tok::kRParen)) {
      do {
        Expr* a = parse_or();
        if (a == nullptr) return nullptr;
        args.push_back(a);
      } while (accept(Tok::kComma));
    }
    if (!accept(Tok::kRParen)) return fail("expected ')'");
    const int n = static_cast<int>(args.size());
    if (n < sig->min_args || (sig->max_args >= 0 && n > sig->max_args)) {
      error_.offset = name_offset;
      error_.message = "wrong number of arguments to '" +
                       std::string(name) + "'";
      return nullptr;
    }
    Expr* e = make(ExprKind::kFunction);
    e->fn = sig->fn;
    e->n_args = static_cast<std::uint32_t>(args.size());
    if (!args.empty()) {
      e->args = out_.arena.make_array<Expr*>(args.size());
      for (std::size_t i = 0; i < args.size(); ++i) e->args[i] = args[i];
    }
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Compiled& out_;
  const NamespaceBindings& ns_;
  CompileError error_;
};

}  // namespace

/// Defined in eval.cpp.
Value evaluate_expr(const Expr* expr, const xml::Node* context);
Value evaluate_expr(const Expr* expr, const xml::Node* context,
                    EvalScratch* scratch);
const NodeSet& select_expr(const Expr* expr, const xml::Node* context,
                           EvalScratch& scratch);
bool test_expr(const Expr* expr, const xml::Node* context,
               EvalScratch& scratch);

}  // namespace detail

XPath XPath::compile(std::string_view expr, CompileError* error,
                     const NamespaceBindings& ns) {
  auto compiled = std::make_shared<detail::Compiled>();
  compiled->expression = std::string(expr);

  std::vector<detail::Token> tokens;
  std::string lex_error;
  std::size_t lex_offset = 0;
  if (!detail::tokenize(expr, &tokens, &lex_error, &lex_offset)) {
    if (error != nullptr) {
      error->offset = lex_offset;
      error->message = std::move(lex_error);
    }
    return XPath();
  }
  detail::Parser parser(std::move(tokens), *compiled, ns);
  compiled->root = parser.parse(error);
  if (compiled->root == nullptr) return XPath();
  return XPath(std::move(compiled));
}

std::string_view XPath::expression() const {
  return impl_ ? std::string_view(impl_->expression) : std::string_view{};
}

bool XPath::structural() const {
  if (impl_ == nullptr || impl_->root == nullptr) return false;
  const detail::Expr* e = impl_->root;
  // A plain location path: no filter-expression base (whose evaluation
  // could be value-dependent) and no predicates anywhere — positional
  // predicates are structural in principle, but a predicate can embed
  // arbitrary value comparisons, so all are rejected conservatively.
  if (e->kind != detail::ExprKind::kPath) return false;
  if (e->base != nullptr || e->n_base_predicates != 0) return false;
  for (std::uint32_t i = 0; i < e->n_steps; ++i) {
    if (e->steps[i].n_predicates != 0) return false;
  }
  return true;
}

namespace {

// Unambiguous (length-prefixed) cache key over expression + bindings:
// no choice of separator byte can make two distinct (expr, ns) pairs
// collide.
void build_plan_key(std::string& key, std::string_view expr,
                    const NamespaceBindings& ns) {
  key.clear();
  key += std::to_string(expr.size());
  key += ':';
  key += expr;
  for (const auto& [prefix, uri] : ns) {
    key += std::to_string(prefix.size());
    key += ':';
    key += prefix;
    key += std::to_string(uri.size());
    key += ':';
    key += uri;
  }
}

// Shared construction-path plan cache behind compile_cached. Guarded by
// a plain mutex: callers compile at pipeline/gateway construction, never
// per message, so contention is irrelevant and the per-worker no-shared-
// state rule of §5b does not apply here.
util::Mutex g_plan_mutex;
PlanCache g_plan_cache XAON_GUARDED_BY(g_plan_mutex){64};

}  // namespace

XPath XPath::compile_cached(std::string_view expr, CompileError* error,
                            const NamespaceBindings& ns) {
  util::MutexLock lock(g_plan_mutex);
  return g_plan_cache.get(expr, error, ns);
}

util::CacheStats XPath::shared_plan_cache_stats() {
  util::MutexLock lock(g_plan_mutex);
  return g_plan_cache.stats();
}

XPath PlanCache::get(std::string_view expr, CompileError* error,
                     const NamespaceBindings& ns) {
  build_plan_key(key_, expr, ns);
  if (const XPath* cached = lru_.find(key_)) return *cached;
  XPath compiled = XPath::compile(expr, error, ns);
  if (!compiled.valid()) return compiled;  // failures pass through uncached
  lru_.insert(key_, compiled);
  return compiled;
}

Value XPath::evaluate(const xml::Node* context) const {
  XAON_CHECK_MSG(impl_ != nullptr, "evaluate() on invalid XPath");
  return detail::evaluate_expr(impl_->root, context);
}

Value XPath::evaluate(const xml::Node* context, EvalScratch& scratch) const {
  XAON_CHECK_MSG(impl_ != nullptr, "evaluate() on invalid XPath");
  return detail::evaluate_expr(impl_->root, context, &scratch);
}

NodeSet XPath::select(const xml::Node* context) const {
  Value v = evaluate(context);
  if (!v.is_node_set()) return {};
  return v.nodes();
}

const NodeSet& XPath::select(const xml::Node* context,
                             EvalScratch& scratch) const {
  XAON_CHECK_MSG(impl_ != nullptr, "select() on invalid XPath");
  return detail::select_expr(impl_->root, context, scratch);
}

bool XPath::test(const xml::Node* context) const {
  return evaluate(context).to_boolean();
}

bool XPath::test(const xml::Node* context, EvalScratch& scratch) const {
  XAON_CHECK_MSG(impl_ != nullptr, "test() on invalid XPath");
  return detail::test_expr(impl_->root, context, scratch);
}

std::string XPath::string(const xml::Node* context) const {
  return evaluate(context).to_string();
}

double XPath::number(const xml::Node* context) const {
  return evaluate(context).to_number();
}

}  // namespace xaon::xpath
