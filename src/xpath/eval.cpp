#include <cmath>
#include <string>
#include <vector>

#include "ast.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/probe.hpp"
#include "xaon/util/str.hpp"
#include "xaon/xpath/value.hpp"
#include "xaon/xpath/xpath.hpp"

/// \file eval.cpp
/// XPath AST evaluator. Runtime type mismatches degrade to empty/zero
/// values (never aborts — the AON gateway evaluates expressions against
/// arbitrary incoming messages).

namespace xaon::xpath::detail {

/// Private-member access for the evaluator (EvalScratch keeps its pool
/// encapsulated from general API users).
struct EvalAccess {
  static std::vector<NodeSet>& pool(EvalScratch& s) { return s.pool_; }
  static NodeSet& result(EvalScratch& s) { return s.result_; }
};

namespace {

namespace probe = xaon::probe;

struct Sites {
  std::uint32_t node_test = probe::site("xpath.step.test", probe::SiteKind::kData);
  std::uint32_t axis_walk = probe::site("xpath.axis.walk", probe::SiteKind::kLoop);
  std::uint32_t predicate = probe::site("xpath.predicate", probe::SiteKind::kData);
  std::uint32_t str_cmp = probe::site("xpath.str.cmp", probe::SiteKind::kData);
};

const Sites& sites() {
  static const Sites s;
  return s;
}

struct EvalCtx {
  NodeRef node;
  std::size_t position = 1;
  std::size_t size = 1;
};

const xml::Node* root_of(const xml::Node* n) {
  while (n->parent != nullptr) n = n->parent;
  return n;
}

class Evaluator {
 public:
  explicit Evaluator(EvalScratch& scratch) : scratch_(scratch) {}

  /// Takes a node-set buffer from the pool (empty, capacity retained).
  NodeSet acquire() {
    auto& pool = EvalAccess::pool(scratch_);
    if (pool.empty()) return {};
    NodeSet v = std::move(pool.back());
    pool.pop_back();
    v.clear();
    return v;
  }

  /// Returns a buffer to the pool for the next acquire().
  void release(NodeSet&& v) {
    EvalAccess::pool(scratch_).push_back(std::move(v));
  }

  Value eval(const Expr* e, const EvalCtx& ctx) {
    XAON_CHECK(e != nullptr);
    switch (e->kind) {
      case ExprKind::kOr: {
        Value l = eval(e->lhs, ctx);
        if (l.to_boolean()) return Value(true);
        return Value(eval(e->rhs, ctx).to_boolean());
      }
      case ExprKind::kAnd: {
        Value l = eval(e->lhs, ctx);
        if (!l.to_boolean()) return Value(false);
        return Value(eval(e->rhs, ctx).to_boolean());
      }
      case ExprKind::kEq:
        return Value(compare_equal(eval(e->lhs, ctx), eval(e->rhs, ctx)));
      case ExprKind::kNe:
        return Value(
            compare_not_equal(eval(e->lhs, ctx), eval(e->rhs, ctx)));
      case ExprKind::kLt:
        return Value(
            compare_relational(eval(e->lhs, ctx), eval(e->rhs, ctx), '<'));
      case ExprKind::kLe:
        return Value(
            compare_relational(eval(e->lhs, ctx), eval(e->rhs, ctx), 'l'));
      case ExprKind::kGt:
        return Value(
            compare_relational(eval(e->lhs, ctx), eval(e->rhs, ctx), '>'));
      case ExprKind::kGe:
        return Value(
            compare_relational(eval(e->lhs, ctx), eval(e->rhs, ctx), 'g'));
      case ExprKind::kAdd:
        return Value(eval(e->lhs, ctx).to_number() +
                     eval(e->rhs, ctx).to_number());
      case ExprKind::kSub:
        return Value(eval(e->lhs, ctx).to_number() -
                     eval(e->rhs, ctx).to_number());
      case ExprKind::kMul:
        return Value(eval(e->lhs, ctx).to_number() *
                     eval(e->rhs, ctx).to_number());
      case ExprKind::kDiv:
        return Value(eval(e->lhs, ctx).to_number() /
                     eval(e->rhs, ctx).to_number());
      case ExprKind::kMod: {
        const double a = eval(e->lhs, ctx).to_number();
        const double b = eval(e->rhs, ctx).to_number();
        return Value(std::fmod(a, b));
      }
      case ExprKind::kNeg:
        return Value(-eval(e->lhs, ctx).to_number());
      case ExprKind::kUnion: {
        Value l = eval(e->lhs, ctx);
        Value r = eval(e->rhs, ctx);
        NodeSet out = acquire();
        if (l.is_node_set()) {
          out.insert(out.end(), l.nodes().begin(), l.nodes().end());
        }
        if (r.is_node_set()) {
          out.insert(out.end(), r.nodes().begin(), r.nodes().end());
        }
        normalize(out);
        return Value(std::move(out));
      }
      case ExprKind::kLiteral:
        return Value(std::string(e->literal));  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
      case ExprKind::kNumber:
        return Value(e->number);
      case ExprKind::kFunction:
        return eval_function(e, ctx);
      case ExprKind::kPath:
        return Value(eval_path(e, ctx));
    }
    return Value(false);
  }

  // --- paths ---------------------------------------------------------------
  // Returns a pool-origin buffer; top-level callers may hand it back via
  // release() (Value-wrapped results escape the pool instead).
  NodeSet eval_path(const Expr* e, const EvalCtx& ctx) {
    NodeSet current = acquire();
    if (e->base != nullptr) {
      Value base = eval(e->base, ctx);
      if (!base.is_node_set()) return current;  // empty
      current.assign(base.nodes().begin(), base.nodes().end());
      // Filter-expression predicates apply to the whole base set, with
      // positions in document order.
      for (std::uint32_t p = 0; p < e->n_base_predicates; ++p) {
        NodeSet pass = acquire();
        const std::size_t size = current.size();
        for (std::size_t i = 0; i < size; ++i) {
          EvalCtx pctx;
          pctx.node = current[i];
          pctx.position = i + 1;
          pctx.size = size;
          Value v = eval(e->base_predicates[p], pctx);
          const bool keep =
              v.kind() == ValueKind::kNumber
                  ? v.to_number() == static_cast<double>(pctx.position)
                  : v.to_boolean();
          if (keep) pass.push_back(current[i]);
        }
        current.swap(pass);
        release(std::move(pass));
      }
    } else if (e->absolute) {
      current.push_back(NodeRef{root_of(ctx.node.node), nullptr});
    } else {
      current.push_back(ctx.node);
    }
    for (std::uint32_t i = 0; i < e->n_steps; ++i) {
      NodeSet next = acquire();
      for (const NodeRef& ref : current) {
        apply_step(e->steps[i], ref, &next);
      }
      normalize(next);
      current.swap(next);
      release(std::move(next));
      if (current.empty()) break;
    }
    return current;
  }

 private:
  void apply_step(const Step& step, const NodeRef& ref, NodeSet* out) {
    NodeSet filtered = acquire();
    collect_axis(step, ref, &filtered);
    // Apply predicates in sequence; positions count in axis order.
    for (std::uint32_t p = 0; p < step.n_predicates; ++p) {
      NodeSet pass = acquire();
      const std::size_t size = filtered.size();
      for (std::size_t i = 0; i < size; ++i) {
        EvalCtx pctx;
        pctx.node = filtered[i];
        pctx.position = i + 1;
        pctx.size = size;
        Value v = eval(step.predicates[p], pctx);
        bool keep;
        if (v.kind() == ValueKind::kNumber) {
          keep = v.to_number() == static_cast<double>(pctx.position);
        } else {
          keep = v.to_boolean();
        }
        if (probe::branch(sites().predicate, keep)) pass.push_back(filtered[i]);
      }
      filtered.swap(pass);
      release(std::move(pass));
    }
    out->insert(out->end(), filtered.begin(), filtered.end());
    release(std::move(filtered));
  }

  // Candidates are produced in axis order: forward axes in document
  // order, reverse axes in reverse document order (so predicate
  // positions match proximity as the spec requires).
  void collect_axis(const Step& step, const NodeRef& ref,
                    std::vector<NodeRef>* out) {
    const xml::Node* n = ref.node;
    switch (step.axis) {
      case Axis::kChild:
        if (ref.is_attr()) return;
        for (const xml::Node* c = n->first_child; c != nullptr;
             c = c->next_sibling) {
          probe::load(c, sizeof(xml::Node));
          maybe_add(step, NodeRef{c, nullptr}, out);
        }
        return;
      case Axis::kDescendant:
        if (ref.is_attr()) return;
        walk_descendants(step, n, out);
        return;
      case Axis::kDescendantOrSelf:
        if (ref.is_attr()) {
          maybe_add(step, ref, out);
          return;
        }
        maybe_add(step, NodeRef{n, nullptr}, out);
        walk_descendants(step, n, out);
        return;
      case Axis::kSelf:
        maybe_add(step, ref, out);
        return;
      case Axis::kParent:
        if (ref.is_attr()) {
          maybe_add(step, NodeRef{n, nullptr}, out);
        } else if (n->parent != nullptr) {
          maybe_add(step, NodeRef{n->parent, nullptr}, out);
        }
        return;
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        if (step.axis == Axis::kAncestorOrSelf) maybe_add(step, ref, out);
        const xml::Node* a = ref.is_attr() ? n : n->parent;
        for (; a != nullptr; a = a->parent) {
          probe::load(a, sizeof(xml::Node));
          maybe_add(step, NodeRef{a, nullptr}, out);
        }
        return;
      }
      case Axis::kAttribute:
        if (ref.is_attr()) return;
        for (const xml::Attr* a = n->first_attr; a != nullptr; a = a->next) {
          probe::load(a, sizeof(xml::Attr));
          maybe_add(step, NodeRef{n, a}, out);
        }
        return;
      case Axis::kFollowingSibling:
        if (ref.is_attr()) return;
        for (const xml::Node* s = n->next_sibling; s != nullptr;
             s = s->next_sibling) {
          probe::load(s, sizeof(xml::Node));
          maybe_add(step, NodeRef{s, nullptr}, out);
        }
        return;
      case Axis::kPrecedingSibling:
        if (ref.is_attr()) return;
        for (const xml::Node* s = n->prev_sibling; s != nullptr;
             s = s->prev_sibling) {
          probe::load(s, sizeof(xml::Node));
          maybe_add(step, NodeRef{s, nullptr}, out);
        }
        return;
    }
  }

  void walk_descendants(const Step& step, const xml::Node* n,
                        std::vector<NodeRef>* out) {
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      probe::load(c, sizeof(xml::Node));
      probe::branch(sites().axis_walk, c->first_child != nullptr);
      maybe_add(step, NodeRef{c, nullptr}, out);
      walk_descendants(step, c, out);
    }
  }

  void maybe_add(const Step& step, const NodeRef& ref,
                 std::vector<NodeRef>* out) {
    if (probe::branch(sites().node_test, node_test(step, ref))) {
      out->push_back(ref);
    }
  }

  bool node_test(const Step& step, const NodeRef& ref) {
    if (ref.is_attr()) {
      switch (step.test) {
        case NodeTestKind::kNode:
        case NodeTestKind::kAnyName:
          return true;
        case NodeTestKind::kNsWildcard:
          return ref.attr->ns_uri == step.ns_uri;
        case NodeTestKind::kName:
          probe::branch(sites().str_cmp, ref.attr->local == step.local);
          return ref.attr->local == step.local &&
                 ref.attr->ns_uri == step.ns_uri;
        default:
          return false;
      }
    }
    const xml::Node* n = ref.node;
    switch (step.test) {
      case NodeTestKind::kNode:
        return true;
      case NodeTestKind::kText:
        return n->is_text();
      case NodeTestKind::kComment:
        return n->type == xml::NodeType::kComment;
      case NodeTestKind::kPi:
        return n->type == xml::NodeType::kProcessingInstruction;
      case NodeTestKind::kAnyName:
        return n->is_element();
      case NodeTestKind::kNsWildcard:
        return n->is_element() && n->ns_uri == step.ns_uri;
      case NodeTestKind::kName:
        probe::branch(sites().str_cmp,
                      n->is_element() && n->local == step.local);
        return n->is_element() && n->local == step.local &&
               n->ns_uri == step.ns_uri;
    }
    return false;
  }

  // --- functions -------------------------------------------------------------
  Value eval_function(const Expr* e, const EvalCtx& ctx) {
    auto arg = [&](std::uint32_t i) { return eval(e->args[i], ctx); };
    auto arg_or_context_string = [&]() -> std::string {  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
      if (e->n_args >= 1) return arg(0).to_string();
      return string_value(ctx.node);
    };
    switch (e->fn) {
      case Fn::kLast:
        return Value(static_cast<double>(ctx.size));
      case Fn::kPosition:
        return Value(static_cast<double>(ctx.position));
      case Fn::kCount: {
        Value v = arg(0);
        if (!v.is_node_set()) return Value(0.0);
        return Value(static_cast<double>(v.nodes().size()));
      }
      case Fn::kLocalName:
      case Fn::kName:
      case Fn::kNamespaceUri: {
        NodeRef target = ctx.node;
        if (e->n_args >= 1) {
          Value v = arg(0);
          if (!v.is_node_set() || v.nodes().empty()) {
            return Value(std::string());  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
          }
          target = v.nodes().front();
        }
        std::string_view local, qname, uri;
        if (target.is_attr()) {
          local = target.attr->local;
          qname = target.attr->qname;
          uri = target.attr->ns_uri;
        } else if (target.node->is_element() ||
                   target.node->type ==
                       xml::NodeType::kProcessingInstruction) {
          local = target.node->local.empty() ? target.node->qname
                                             : target.node->local;
          qname = target.node->qname;
          uri = target.node->ns_uri;
        }
        if (e->fn == Fn::kLocalName) return Value(std::string(local));  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
        if (e->fn == Fn::kName) return Value(std::string(qname));  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
        return Value(std::string(uri));  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
      }
      case Fn::kString:
        if (e->n_args >= 1) return Value(arg(0).to_string());
        return Value(string_value(ctx.node));
      case Fn::kConcat: {
        std::string out;
        for (std::uint32_t i = 0; i < e->n_args; ++i) {
          out += arg(i).to_string();
        }
        return Value(std::move(out));
      }
      case Fn::kStartsWith:
        return Value(util::starts_with(arg(0).to_string(),
                                       arg(1).to_string()));
      case Fn::kContains:
        return Value(util::contains(arg(0).to_string(), arg(1).to_string()));
      case Fn::kSubstringBefore: {
        const std::string s = arg(0).to_string();
        const std::string t = arg(1).to_string();
        const auto p = s.find(t);
        return Value(p == std::string::npos ? std::string()  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
                                            : s.substr(0, p));
      }
      case Fn::kSubstringAfter: {
        const std::string s = arg(0).to_string();
        const std::string t = arg(1).to_string();
        const auto p = s.find(t);
        return Value(p == std::string::npos ? std::string()  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
                                            : s.substr(p + t.size()));
      }
      case Fn::kSubstring: {
        const std::string s = arg(0).to_string();
        const double start = std::round(arg(1).to_number());
        double end;
        if (e->n_args >= 3) {
          end = start + std::round(arg(2).to_number());
        } else {
          end = static_cast<double>(s.size()) + 1.0;
        }
        if (std::isnan(start) || std::isnan(end)) return Value(std::string());  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
        std::string out;
        for (std::size_t i = 0; i < s.size(); ++i) {
          const double pos = static_cast<double>(i) + 1.0;
          if (pos >= start && pos < end) out.push_back(s[i]);
        }
        return Value(std::move(out));
      }
      case Fn::kStringLength:
        return Value(static_cast<double>(arg_or_context_string().size()));
      case Fn::kNormalizeSpace: {
        const std::string s = arg_or_context_string();
        std::string out;
        bool in_space = true;  // trims leading
        for (char c : s) {
          if (util::is_ascii_space(c)) {
            if (!in_space) out.push_back(' ');
            in_space = true;
          } else {
            out.push_back(c);
            in_space = false;
          }
        }
        if (!out.empty() && out.back() == ' ') out.pop_back();
        return Value(std::move(out));
      }
      case Fn::kTranslate: {
        const std::string s = arg(0).to_string();
        const std::string from = arg(1).to_string();
        const std::string to = arg(2).to_string();
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
          const auto p = from.find(c);
          if (p == std::string::npos) {
            out.push_back(c);
          } else if (p < to.size()) {
            out.push_back(to[p]);
          }  // else: removed
        }
        return Value(std::move(out));
      }
      case Fn::kBoolean:
        return Value(arg(0).to_boolean());
      case Fn::kNot:
        return Value(!arg(0).to_boolean());
      case Fn::kTrue:
        return Value(true);
      case Fn::kFalse:
        return Value(false);
      case Fn::kNumber:
        if (e->n_args >= 1) return Value(arg(0).to_number());
        return Value(Value::parse_number(string_value(ctx.node)));
      case Fn::kSum: {
        Value v = arg(0);
        if (!v.is_node_set()) return Value(std::nan(""));
        double sum = 0;
        for (const NodeRef& r : v.nodes()) {
          sum += Value::parse_number(string_value(r));
        }
        return Value(sum);
      }
      case Fn::kFloor:
        return Value(std::floor(arg(0).to_number()));
      case Fn::kCeiling:
        return Value(std::ceil(arg(0).to_number()));
      case Fn::kRound: {
        const double d = arg(0).to_number();
        if (std::isnan(d) || std::isinf(d)) return Value(d);
        return Value(std::floor(d + 0.5));  // XPath: round half up
      }
      case Fn::kId:
      case Fn::kLang:
        return Value(false);  // unsupported; compile rejects these
    }
    return Value(false);
  }

  EvalScratch& scratch_;
};

}  // namespace

Value evaluate_expr(const Expr* expr, const xml::Node* context,
                    EvalScratch* scratch) {
  XAON_CHECK(context != nullptr);
  EvalScratch local;
  Evaluator ev(scratch != nullptr ? *scratch : local);
  EvalCtx ctx;
  ctx.node = NodeRef{context, nullptr};
  return ev.eval(expr, ctx);
}

Value evaluate_expr(const Expr* expr, const xml::Node* context) {
  return evaluate_expr(expr, context, nullptr);
}

const NodeSet& select_expr(const Expr* expr, const xml::Node* context,
                           EvalScratch& scratch) {
  XAON_CHECK(context != nullptr);
  Evaluator ev(scratch);
  EvalCtx ctx;
  ctx.node = NodeRef{context, nullptr};
  NodeSet& result = EvalAccess::result(scratch);
  if (expr->kind == ExprKind::kPath) {
    // Swap the path result into the persistent slot and recycle the
    // previous result's buffer — no allocation at steady state.
    NodeSet r = ev.eval_path(expr, ctx);
    result.swap(r);
    ev.release(std::move(r));
  } else {
    Value v = ev.eval(expr, ctx);
    result.clear();
    if (v.is_node_set()) {
      result.assign(v.nodes().begin(), v.nodes().end());
    }
  }
  return result;
}

bool test_expr(const Expr* expr, const xml::Node* context,
               EvalScratch& scratch) {
  // Node-set-producing expressions test as "non-empty" — route through
  // select_expr so the set never escapes the pool.
  if (expr->kind == ExprKind::kPath) {
    return !select_expr(expr, context, scratch).empty();
  }
  return evaluate_expr(expr, context, &scratch).to_boolean();
}

}  // namespace xaon::xpath::detail
