#include "xaon/xpath/value.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "xaon/util/assert.hpp"
#include "xaon/util/str.hpp"

namespace xaon::xpath {

std::string string_value(const NodeRef& ref) {
  XAON_CHECK(ref.node != nullptr);
  if (ref.is_attr()) return std::string(ref.attr->value);  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
  switch (ref.node->type) {
    case xml::NodeType::kText:
    case xml::NodeType::kCData:
    case xml::NodeType::kComment:
    case xml::NodeType::kProcessingInstruction:
      return std::string(ref.node->text);  // xlint: allow(hot-string): string-valued XPath result — Value owns its string by contract
    case xml::NodeType::kElement:
    case xml::NodeType::kDocument:
      return ref.node->text_content();
  }
  return {};
}

namespace {

/// Position of an attribute within its element's attribute list (1-based
/// so the element itself sorts first).
std::uint32_t attr_pos(const NodeRef& ref) {
  if (!ref.is_attr()) return 0;
  std::uint32_t i = 1;
  for (const xml::Attr* a = ref.node->first_attr; a != nullptr;
       a = a->next, ++i) {
    if (a == ref.attr) return i;
  }
  return i;
}

}  // namespace

bool doc_order_less(const NodeRef& a, const NodeRef& b) {
  if (a.node->doc_order != b.node->doc_order) {
    return a.node->doc_order < b.node->doc_order;
  }
  return attr_pos(a) < attr_pos(b);
}

void normalize(NodeSet& set) {
  std::sort(set.begin(), set.end(), doc_order_less);
  set.erase(std::unique(set.begin(), set.end()), set.end());
}

bool Value::to_boolean() const {
  switch (kind_) {
    case ValueKind::kBoolean: return boolean_;
    case ValueKind::kNumber: return number_ != 0.0 && !std::isnan(number_);
    case ValueKind::kString: return !string_.empty();
    case ValueKind::kNodeSet: return !nodes_.empty();
  }
  return false;
}

double Value::to_number() const {
  switch (kind_) {
    case ValueKind::kBoolean: return boolean_ ? 1.0 : 0.0;
    case ValueKind::kNumber: return number_;
    case ValueKind::kString: return parse_number(string_);
    case ValueKind::kNodeSet:
      if (nodes_.empty()) return std::nan("");
      return parse_number(string_value(nodes_.front()));
  }
  return std::nan("");
}

std::string Value::to_string() const {
  switch (kind_) {
    case ValueKind::kBoolean: return boolean_ ? "true" : "false";
    case ValueKind::kNumber: return format_number(number_);
    case ValueKind::kString: return string_;
    case ValueKind::kNodeSet:
      if (nodes_.empty()) return {};
      return string_value(nodes_.front());
  }
  return {};
}

const NodeSet& Value::nodes() const {
  XAON_CHECK_MSG(kind_ == ValueKind::kNodeSet, "value is not a node-set");
  return nodes_;
}

std::string Value::format_number(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == 0.0) return "0";  // also -0
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    return util::format("%.0f", d);
  }
  // Shortest representation that round-trips is overkill here; %g with 12
  // significant digits matches common XPath implementations closely.
  std::string s = util::format("%.12g", d);
  return s;
}

double Value::parse_number(std::string_view s) {
  const std::string_view t = util::trim(s);
  if (t.empty()) return std::nan("");
  // XPath Number ::= Digits ('.' Digits?)? | '.' Digits, optional leading
  // '-'. Stricter than strtod (no hex, no exponent, no "inf").
  std::size_t i = 0;
  if (t[0] == '-') i = 1;
  bool digits = false, dot = false;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (util::is_ascii_digit(t[j])) {
      digits = true;
    } else if (t[j] == '.' && !dot) {
      dot = true;
    } else {
      return std::nan("");
    }
  }
  if (!digits) return std::nan("");
  return util::parse_f64(t).value_or(std::nan(""));
}

namespace {

bool equal_primitive(const Value& a, const Value& b, bool want_equal) {
  // Neither side is a node-set here.
  if (a.kind() == ValueKind::kBoolean || b.kind() == ValueKind::kBoolean) {
    return (a.to_boolean() == b.to_boolean()) == want_equal;
  }
  if (a.kind() == ValueKind::kNumber || b.kind() == ValueKind::kNumber) {
    const double x = a.to_number();
    const double y = b.to_number();
    // IEEE: NaN compares unequal to everything, matching XPath.
    return want_equal ? x == y : x != y;
  }
  return (a.to_string() == b.to_string()) == want_equal;
}

/// Existential (in)equality. `want_equal` false gives '!=' semantics,
/// which is NOT the negation of '=' over node-sets.
bool compare_eq_impl(const Value& a, const Value& b, bool want_equal) {
  const bool an = a.is_node_set();
  const bool bn = b.is_node_set();
  if (an && bn) {
    for (const NodeRef& x : a.nodes()) {
      const std::string sx = string_value(x);
      for (const NodeRef& y : b.nodes()) {
        if ((sx == string_value(y)) == want_equal) return true;
      }
    }
    return false;
  }
  if (an || bn) {
    const Value& set = an ? a : b;
    const Value& other = an ? b : a;
    if (other.kind() == ValueKind::kBoolean) {
      return (set.to_boolean() == other.to_boolean()) == want_equal;
    }
    for (const NodeRef& x : set.nodes()) {
      const std::string sx = string_value(x);
      bool eq;
      if (other.kind() == ValueKind::kNumber) {
        eq = Value::parse_number(sx) == other.to_number();
      } else {
        eq = sx == other.to_string();
      }
      if (eq == want_equal) return true;
    }
    return false;
  }
  return equal_primitive(a, b, want_equal);
}

}  // namespace

bool compare_equal(const Value& a, const Value& b) {
  return compare_eq_impl(a, b, /*want_equal=*/true);
}

bool compare_not_equal(const Value& a, const Value& b) {
  return compare_eq_impl(a, b, /*want_equal=*/false);
}

bool compare_relational(const Value& a, const Value& b, char op) {
  auto cmp = [op](double x, double y) {
    switch (op) {
      case '<': return x < y;
      case '>': return x > y;
      case 'l': return x <= y;
      case 'g': return x >= y;
      default: XAON_CHECK_MSG(false, "bad relational op"); return false;
    }
  };
  const bool an = a.is_node_set();
  const bool bn = b.is_node_set();
  if (an && bn) {
    for (const NodeRef& x : a.nodes()) {
      const double dx = Value::parse_number(string_value(x));
      for (const NodeRef& y : b.nodes()) {
        if (cmp(dx, Value::parse_number(string_value(y)))) return true;
      }
    }
    return false;
  }
  if (an) {
    const double dy = b.to_number();
    for (const NodeRef& x : a.nodes()) {
      if (cmp(Value::parse_number(string_value(x)), dy)) return true;
    }
    return false;
  }
  if (bn) {
    const double dx = a.to_number();
    for (const NodeRef& y : b.nodes()) {
      if (cmp(dx, Value::parse_number(string_value(y)))) return true;
    }
    return false;
  }
  return cmp(a.to_number(), b.to_number());
}

}  // namespace xaon::xpath
