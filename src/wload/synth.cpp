#include "xaon/wload/synth.hpp"

#include <algorithm>
#include <cmath>

#include "xaon/util/rng.hpp"

namespace xaon::wload {

uarch::Trace make_synthetic_trace(const SynthConfig& config) {
  util::Xoshiro256ss rng(config.seed);
  uarch::Trace trace;
  trace.reserve(config.ops);

  std::uint64_t seq_cursor = 0;
  std::uint64_t pc = config.code_base;
  const std::uint64_t code_end =
      config.code_base + config.code_footprint_bytes;
  const std::uint64_t lines =
      std::max<std::uint64_t>(1, config.working_set_bytes / 64);

  auto next_pc = [&] {
    pc += 4;
    if (pc >= code_end) pc = config.code_base;
    return pc;
  };

  auto data_address = [&]() -> std::uint64_t {
    switch (config.pattern) {
      case AddressPattern::kSequential: {
        const std::uint64_t a =
            config.data_base + (seq_cursor % config.working_set_bytes);
        seq_cursor += config.stride_bytes;
        return a;
      }
      case AddressPattern::kRandom:
        return config.data_base + rng.next_below(lines) * 64;
      case AddressPattern::kZipf: {
        // 80% of accesses in 20% of the set, applied recursively twice.
        std::uint64_t span = lines;
        std::uint64_t base = 0;
        for (int level = 0; level < 2; ++level) {
          if (rng.next_bool(0.8)) {
            span = std::max<std::uint64_t>(1, span / 5);
          } else {
            base += span / 5;
            span = span - span / 5;
          }
        }
        return config.data_base + (base + rng.next_below(span)) * 64;
      }
    }
    return config.data_base;
  };

  // Deterministic per-site loop periods make low-entropy branches
  // predictable in a pattern (not constant) way.
  for (std::uint64_t i = 0; i < config.ops; ++i) {
    uarch::Op op;
    const double r = rng.next_double();
    if (r < config.branch_fraction) {
      op.kind = uarch::OpKind::kBranch;
      const std::uint32_t site =
          static_cast<std::uint32_t>(rng.next_below(config.branch_sites));
      op.pc = config.code_base + (site * 64) % config.code_footprint_bytes;
      if (rng.next_bool(config.branch_entropy)) {
        op.taken = rng.next_bool(config.branch_taken_bias);
      } else {
        // Loop-like: taken except every (site+3)rd execution.
        op.taken = (i % (site + 3)) != 0;
      }
      pc = op.taken ? op.pc + 4 : next_pc();
    } else if (r < config.branch_fraction + config.memory_fraction) {
      op.kind = rng.next_bool(config.store_fraction)
                    ? uarch::OpKind::kStore
                    : uarch::OpKind::kLoad;
      op.addr = data_address();
      op.pc = next_pc();
    } else {
      op.kind = uarch::OpKind::kAlu;
      op.pc = next_pc();
    }
    trace.push_back(op);
  }
  return trace;
}

}  // namespace xaon::wload
