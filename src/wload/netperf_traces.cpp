#include "xaon/wload/netperf_traces.hpp"

#include <algorithm>

#include "xaon/util/rng.hpp"

namespace xaon::wload {

namespace {

/// Emits the per-buffer kernel work for one role.
class NetperfEmitter {
 public:
  NetperfEmitter(const NetperfTraceConfig& config, uarch::Trace* out,
                 std::uint64_t seed)
      : config_(config), out_(out), rng_(seed) {}

  /// Copies one buffer (`offset` bytes into the logical stream) between
  /// `src_base`/`dst_base` regions, with protocol work every MSS.
  void copy_buffer(std::uint64_t offset, std::uint64_t src_base,
                   std::uint64_t dst_base, bool src_is_ring,
                   bool dst_is_ring) {
    const std::uint32_t chunk = config_.copy_chunk_bytes;
    std::uint64_t since_segment = 0;
    for (std::uint64_t b = 0; b < config_.buffer_bytes; b += chunk) {
      const std::uint64_t pos = offset + b;
      const std::uint64_t src =
          src_is_ring ? ring_addr(src_base, pos) : src_base + pos;
      const std::uint64_t dst =
          dst_is_ring ? ring_addr(dst_base, pos) : dst_base + pos;
      // Copy loop body: load, store, loop branch; the index update
      // fuses with the branch on both modeled cores.
      emit_mem(src, false);
      emit_mem(dst, true);
      emit_branch(kCopyLoopSite, /*taken=*/b + chunk < config_.buffer_bytes);

      since_segment += chunk;
      if (since_segment >= config_.mss) {
        since_segment = 0;
        protocol_work(pos);
      }
    }
    // Syscall entry/exit and socket bookkeeping per buffer.
    emit_alu(40);
    for (int i = 0; i < 6; ++i) {
      emit_branch(kSyscallSite + static_cast<std::uint32_t>(i),
                  rng_.next_bool(0.7));
    }
  }

 private:
  static constexpr std::uint32_t kCopyLoopSite = 1;
  static constexpr std::uint32_t kProtoSite = 8;
  static constexpr std::uint32_t kSyscallSite = 24;

  std::uint64_t ring_addr(std::uint64_t base, std::uint64_t pos) const {
    return base + pos % config_.socket_ring_bytes;
  }

  void emit_mem(std::uint64_t addr, bool is_write) {
    uarch::Op op;
    op.kind = is_write ? uarch::OpKind::kStore : uarch::OpKind::kLoad;
    op.addr = addr;
    op.pc = advance_pc();
    out_->push_back(op);
  }

  void emit_alu(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      uarch::Op op;
      op.kind = uarch::OpKind::kAlu;
      op.pc = advance_pc();
      out_->push_back(op);
    }
  }

  void emit_branch(std::uint32_t site, bool taken) {
    uarch::Op op;
    op.kind = uarch::OpKind::kBranch;
    op.taken = taken;
    op.pc = config_.code_base +
            (static_cast<std::uint64_t>(site) * 64) %
                config_.code_footprint_bytes;
    out_->push_back(op);
    pc_ = taken ? op.pc + 4 : pc_ + 4;
  }

  /// Per-MSS TCP/IP work: header build/parse, checksum touch of
  /// metadata, a handful of partly data-dependent branches.
  void protocol_work(std::uint64_t pos) {
    // skb metadata region: small, hot, reused.
    const std::uint64_t meta =
        config_.socket_ring_base + config_.socket_ring_bytes +
        (pos / config_.mss % 64) * 256;
    for (int i = 0; i < 3; ++i) emit_mem(meta + i * 64ull, false);
    emit_mem(meta + 192, true);
    emit_alu(24);
    for (int i = 0; i < 10; ++i) {
      emit_branch(kProtoSite + static_cast<std::uint32_t>(i),
                  rng_.next_bool(i < 7 ? 0.9 : 0.55));
    }
  }

  std::uint64_t advance_pc() {
    pc_ += 4;
    if (pc_ >= config_.code_base + config_.code_footprint_bytes) {
      pc_ = config_.code_base;
    }
    return pc_;
  }

  NetperfTraceConfig config_;
  uarch::Trace* out_;
  util::Xoshiro256ss rng_;
  std::uint64_t pc_ = 0x0080'0000;
};

}  // namespace

std::uint64_t netperf_trace_bytes(const NetperfTraceConfig& config) {
  return static_cast<std::uint64_t>(config.iterations) * config.buffer_bytes;
}

uarch::Trace make_netperf_sender_trace(const NetperfTraceConfig& config) {
  uarch::Trace trace;
  NetperfEmitter emitter(config, &trace, /*seed=*/0xA01);
  for (std::uint32_t i = 0; i < config.iterations; ++i) {
    emitter.copy_buffer(static_cast<std::uint64_t>(i) * config.buffer_bytes,
                        config.app_buffer_base, config.socket_ring_base,
                        /*src_is_ring=*/false, /*dst_is_ring=*/true);
  }
  return trace;
}

uarch::Trace make_netperf_receiver_trace(const NetperfTraceConfig& config) {
  uarch::Trace trace;
  NetperfEmitter emitter(config, &trace, /*seed=*/0xB02);
  for (std::uint32_t i = 0; i < config.iterations; ++i) {
    emitter.copy_buffer(static_cast<std::uint64_t>(i) * config.buffer_bytes,
                        config.socket_ring_base, config.sink_buffer_base,
                        /*src_is_ring=*/true, /*dst_is_ring=*/false);
  }
  return trace;
}

uarch::Trace make_netperf_loopback_timeshared_trace(
    const NetperfTraceConfig& config) {
  uarch::Trace trace;
  NetperfEmitter sender(config, &trace, /*seed=*/0xA01);
  NetperfEmitter receiver(config, &trace, /*seed=*/0xB02);
  for (std::uint32_t i = 0; i < config.iterations; ++i) {
    const std::uint64_t offset =
        static_cast<std::uint64_t>(i) * config.buffer_bytes;
    sender.copy_buffer(offset, config.app_buffer_base,
                       config.socket_ring_base, false, true);
    receiver.copy_buffer(offset, config.socket_ring_base,
                         config.sink_buffer_base, true, false);
  }
  return trace;
}

}  // namespace xaon::wload
