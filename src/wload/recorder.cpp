#include "xaon/wload/recorder.hpp"

#include <algorithm>

namespace xaon::wload {

namespace {

constexpr std::uint64_t kPageBytes = 4096;
constexpr std::uint64_t kPageMask = kPageBytes - 1;

/// Mixes a site id into a stable pseudo-address (splitmix-style).
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TraceRecorder::TraceRecorder(const RecorderConfig& config)
    : config_(config), pc_(config.code_base) {}

std::uint64_t TraceRecorder::remap(std::uint64_t host_addr) {
  const std::uint64_t page = host_addr & ~kPageMask;
  auto [it, inserted] = page_map_.try_emplace(page, 0);
  if (inserted) {
    it->second = config_.data_base + next_page_ * kPageBytes;
    ++next_page_;
  }
  return it->second + (host_addr & kPageMask);
}

std::uint64_t TraceRecorder::site_entry_pc(std::uint32_t site) const {
  // Each site gets a stable 64-byte-aligned entry inside the footprint.
  const std::uint64_t slots = config_.code_footprint_bytes / 64;
  const std::uint64_t slot = slots == 0 ? 0 : mix(site + 1) % slots;
  return config_.code_base + slot * 64;
}

void TraceRecorder::advance_pc() {
  pc_ += 4;
  if (pc_ >= config_.code_base + config_.code_footprint_bytes) {
    pc_ = config_.code_base;
  }
}

void TraceRecorder::emit_memory(const void* addr, std::uint32_t bytes,
                                bool is_write) {
  if (bytes == 0) return;
  const auto host = reinterpret_cast<std::uint64_t>(addr);
  const std::uint32_t step = config_.bytes_per_access;
  for (std::uint64_t offset = 0; offset < bytes; offset += step) {
    uarch::Op op;
    op.pc = pc_;
    op.addr = remap(host + offset);
    op.kind = is_write ? uarch::OpKind::kStore : uarch::OpKind::kLoad;
    op.size = static_cast<std::uint8_t>(
        std::min<std::uint64_t>(step, bytes - offset));
    trace_.push_back(op);
    advance_pc();
  }
}

void TraceRecorder::inject_expansion(std::uint64_t recorded_ops) {
  if (config_.compute_expansion <= 0 || recorded_ops == 0) return;
  expansion_carry_ +=
      config_.compute_expansion * static_cast<double>(recorded_ops);
  auto n = static_cast<std::uint64_t>(expansion_carry_);
  if (n == 0) return;
  expansion_carry_ -= static_cast<double>(n);

  auto next_rand = [&] {
    // splitmix64 step — cheap, deterministic.
    std::uint64_t z = (expansion_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  const std::uint64_t hot_base = config_.data_base + 0x0800'0000ull;
  const std::uint64_t hot_lines =
      std::max<std::uint64_t>(1, config_.expansion_hot_bytes / 64);
  // The warm set is process-global and read-mostly (compiled schemas,
  // DFA tables): every worker thread shares one copy.
  const std::uint64_t warm_base = 0x7000'0000ull;
  const std::uint64_t warm_lines =
      std::max<std::uint64_t>(1, config_.expansion_warm_bytes / 64);

  for (std::uint64_t i = 0; i < n; ++i) {
    ++expansion_counter_;
    const std::uint64_t r = next_rand();
    const double u = static_cast<double>(r >> 11) * 0x1.0p-53;
    uarch::Op op;
    if (u < config_.expansion_branch_fraction) {
      op.kind = uarch::OpKind::kBranch;
      const std::uint32_t site_index =
          static_cast<std::uint32_t>(r % kExpansionSites);
      op.pc = site_entry_pc(2000 + site_index);
      const double u2 =
          static_cast<double>(next_rand() >> 11) * 0x1.0p-53;
      if (u2 < config_.expansion_branch_entropy) {
        op.taken = (next_rand() & 0xFFFF) <
                   static_cast<std::uint64_t>(
                       config_.expansion_branch_bias * 65536.0);
      } else {
        // Patterned per site: a loop of period (site-dependent) the
        // predictors can learn — table-lookup loops are regular.
        const std::uint32_t period = site_index % 7 + 3;
        op.taken = (++expansion_site_count_[site_index]) % period != 0;
      }
      pc_ = op.taken ? op.pc + 4 : pc_ + 4;
    } else if (u < config_.expansion_branch_fraction +
                       config_.expansion_memory_fraction) {
      const double u3 =
          static_cast<double>(next_rand() >> 11) * 0x1.0p-53;
      if (u3 < config_.expansion_warm_fraction) {
        // Shared tables are read-only on the request path.
        op.kind = uarch::OpKind::kLoad;
        op.addr = warm_base + (next_rand() % warm_lines) * 64;
      } else {
        op.kind = (next_rand() & 3) == 0 ? uarch::OpKind::kStore
                                         : uarch::OpKind::kLoad;
        op.addr = hot_base + (next_rand() % hot_lines) * 64;
      }
      op.pc = pc_;
      advance_pc();
    } else {
      op.kind = uarch::OpKind::kAlu;
      op.pc = pc_;
      advance_pc();
    }
    trace_.push_back(op);
  }
}

void TraceRecorder::on_load(const void* addr, std::uint32_t bytes) {
  const std::size_t before = trace_.size();
  emit_memory(addr, bytes, /*is_write=*/false);
  inject_expansion(trace_.size() - before);
}

void TraceRecorder::on_store(const void* addr, std::uint32_t bytes) {
  const std::size_t before = trace_.size();
  emit_memory(addr, bytes, /*is_write=*/true);
  inject_expansion(trace_.size() - before);
}

void TraceRecorder::on_branch(std::uint32_t site, bool taken) {
  uarch::Op op;
  op.kind = uarch::OpKind::kBranch;
  op.taken = taken;
  // The branch instruction itself lives at a site-specific address so
  // the simulated predictors see stable, distinct PCs per source-level
  // decision point.
  op.pc = site_entry_pc(site);
  trace_.push_back(op);
  // Taken branches redirect fetch to the site entry (loop bodies
  // re-fetch their lines); fall-through continues linearly.
  if (taken) {
    pc_ = op.pc + 4;
  } else {
    advance_pc();
  }
  inject_expansion(1);
}

void TraceRecorder::on_alu(std::uint32_t count) {
  alu_carry_ += static_cast<double>(count) * config_.alu_scale;
  std::uint32_t n = static_cast<std::uint32_t>(alu_carry_);
  if (n == 0) return;
  alu_carry_ -= n;
  n = std::min(n, config_.max_alu_batch);
  for (std::uint32_t i = 0; i < n; ++i) {
    uarch::Op op;
    op.kind = uarch::OpKind::kAlu;
    op.pc = pc_;
    trace_.push_back(op);
    advance_pc();
  }
  inject_expansion(n);
}

uarch::Trace TraceRecorder::take_trace() {
  uarch::Trace out = std::move(trace_);
  trace_.clear();
  return out;
}

}  // namespace xaon::wload
