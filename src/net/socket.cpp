#include "xaon/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "xaon/util/str.hpp"

namespace xaon::net {

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void set_error(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = util::format("%s: %s", what, std::strerror(errno));
  }
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

Fd listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
              std::string* error) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    set_error(error, "bind");
    return Fd();
  }
  if (::listen(fd.get(), 512) != 0) {
    set_error(error, "listen");
    return Fd();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      set_error(error, "getsockname");
      return Fd();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Fd connect_tcp(std::uint16_t port, std::string* error) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return Fd();
  }
  sockaddr_in addr = loopback_addr(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    set_error(error, "connect");
    return Fd();
  }
  set_nodelay(fd.get());
  return fd;
}

bool write_all(int fd, std::string_view data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + pos, data.size() - pos, MSG_NOSIGNAL);
    if (n > 0) {
      pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool BlockingClient::connect(std::uint16_t port, std::string* error) {
  fd_ = connect_tcp(port, error);
  pending_.clear();
  pos_ = 0;
  return fd_.valid();
}

void BlockingClient::close() {
  fd_.reset();
  pending_.clear();
  pos_ = 0;
}

bool BlockingClient::send(std::string_view bytes) {
  return fd_.valid() && write_all(fd_.get(), bytes);
}

int BlockingClient::read_response(http::ResponseParser& parser) {
  if (!fd_.valid()) return -1;
  parser.reset();
  char buf[16 * 1024];
  for (;;) {
    if (pos_ < pending_.size()) {
      const std::string_view view(pending_.data() + pos_,
                                  pending_.size() - pos_);
      pos_ += parser.feed(view);
      if (parser.done()) {
        if (pos_ == pending_.size()) {
          pending_.clear();
          pos_ = 0;
        }
        return parser.response().status;
      }
      if (parser.failed()) return -1;
    }
    // Everything buffered is consumed: drop it before reading more so
    // the buffer never grows past one read chunk + one partial message.
    if (pos_ == pending_.size()) {
      pending_.clear();
      pos_ = 0;
    }
    ssize_t n;
    do {
      n = ::read(fd_.get(), buf, sizeof(buf));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return -1;  // EOF or socket error mid-response
    pending_.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace xaon::net
