#include "xaon/net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <thread>
#include <vector>

#include "xaon/http/message.hpp"
#include "xaon/net/socket.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/backoff.hpp"
#include "xaon/util/spsc_queue.hpp"
#include "xaon/util/str.hpp"

/// Concurrency contract (same audit discipline as aon/server.cpp):
///
///   acceptor thread                      worker w (event loop)
///   ---------------                      ---------------------
///   handoff[w].try_push(fd)              eventfd readable:
///   write(eventfd[w], 1)                   handoff.try_pop() -> fd ...
///   ...
///   stopping.store(true, release)        stop[w].load(acquire)
///
/// * fd handoff: each worker's handoff ring is a strict SPSC pair —
///   the acceptor is the only producer, the owning event loop the only
///   consumer. SpscQueue's release/acquire on head_ publishes the fd;
///   the eventfd write is only a wakeup, not a synchronization edge.
/// * Shutdown: `stop()` joins the acceptor BEFORE setting the workers'
///   stop flags, so no handoff push can race a worker's final drain;
///   the release store / acquire load pairing makes every earlier push
///   visible to a worker that observes stop==true.
/// * Worker stats (counters, WorkerMetrics, StatusBuckets) are written
///   by exactly one event-loop thread while it runs and read by stop()
///   only after join() — the join provides the happens-before edge, so
///   the fields carry no locks (TSan tier covers this file).

namespace xaon::net {

namespace {

// Decimal append without std::to_string (alloc-free into the reused
// response buffer).
void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  std::size_t n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) out += buf[--n];
}

// Serializes `response` into `out` (appending — the connection may
// already hold earlier pipelined responses). `status` may override the
// pipeline's status when the forward budget degraded this message to
// 502/503; the override replaces reason and body with the standard
// phrase so the client sees a coherent error. Steady-state
// allocation-free once `out` has grown to working capacity.
void append_response(const http::Response& response, int status, bool close,
                     std::string& out) {
  const bool overridden = status != response.status;
  out += response.version;
  out += ' ';
  append_u64(out, static_cast<std::uint64_t>(status));
  out += ' ';
  const std::string_view phrase = http::reason_phrase(status);
  if (overridden || response.reason.empty()) {
    out += phrase;
  } else {
    out += response.reason;
  }
  out += "\r\n";
  for (const auto& e : response.headers.entries()) {
    // Framing headers are owned by the transport, not the pipeline.
    if (util::iequals(e.name, "Content-Length") ||
        util::iequals(e.name, "Transfer-Encoding") ||
        util::iequals(e.name, "Connection")) {
      continue;
    }
    out += e.name;
    out += ": ";
    out += e.value;
    out += "\r\n";
  }
  if (close) out += "Connection: close\r\n";
  const std::string_view body = overridden ? phrase : response.body;
  out += "Content-Length: ";
  append_u64(out, body.size());
  out += "\r\n\r\n";
  out += body;
}

// Transport-level rejection for bytes that never became a request.
void append_bad_request(std::string& out) {
  out +=
      "HTTP/1.1 400 Bad Request\r\n"
      "Connection: close\r\n"
      "Content-Length: 11\r\n\r\n"
      "Bad Request";
}

/// One client connection's state. The parser accumulates across
/// arbitrary read chunks (kReading); completed messages append their
/// response to `out`, which drains to the socket as the kernel accepts
/// it (kDraining when EPOLLOUT is armed). `close_after_flush` is the
/// terminal marker: set on parse errors and `Connection: close`.
/// Recycled through the worker's free list, buffers retained — a
/// steady-state connection churn does not touch the allocator.
struct Connection {
  int fd = -1;
  http::RequestParser parser;
  std::string out;           ///< pending response bytes
  std::size_t out_pos = 0;   ///< drain cursor into `out`
  std::uint64_t parse_ns = 0;      ///< parse time of the in-flight message
  std::uint64_t msg_start_ns = 0;  ///< first byte seen -> response queued
  bool close_after_flush = false;
  bool want_write = false;   ///< EPOLLOUT armed
};

}  // namespace

/// One event-loop thread: epoll over its connections plus the handoff
/// eventfd. Owns a Pipeline::ProcessScratch (arena, parser pools,
/// route cache) shared by every connection it serves — per-message
/// state lives in the scratch, per-connection framing state in the
/// Connection.
class Worker {
 public:
  Worker(const ServerConfig& config, const aon::Pipeline& pipeline)
      : handoff(config.handoff_capacity),
        config_(config),
        pipeline_(pipeline) {
    scratch_.metrics = &metrics;
    if (scratch_.route_cache.capacity() != config.route_cache_capacity) {
      scratch_.route_cache.set_capacity(config.route_cache_capacity);
    }
    read_buf_.resize(config.read_chunk);
  }

  ~Worker() {
    XAON_CHECK(!thread.joinable());
  }

  bool start(std::string* error) {
    epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd_.valid()) {
      if (error != nullptr) error->assign("epoll_create1 failed");
      return false;
    }
    event_fd_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!event_fd_.valid()) {
      if (error != nullptr) error->assign("eventfd failed");
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the eventfd
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, event_fd_.get(), &ev) !=
        0) {
      if (error != nullptr) error->assign("epoll_ctl(eventfd) failed");
      return false;
    }
    thread = std::thread([this] { run(); });
    return true;
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd_.get(), &one, sizeof(one));
  }

  util::SpscQueue<int> handoff;  ///< acceptor -> this worker (SPSC)
  std::atomic<bool> stop{false};
  std::thread thread;

  // Single-writer while the loop runs; read by stop() after join().
  std::uint64_t processed = 0;
  std::uint64_t primary = 0;
  std::uint64_t error = 0;
  std::uint64_t failed = 0;
  aon::StatusBuckets status;
  std::uint64_t retries = 0;
  std::uint64_t fwd_failures = 0;
  std::uint64_t fwd_shed = 0;
  util::WorkerMetrics metrics;

 private:
  void run() {
    // Scan-kernel counters are thread-local to this event loop; start
    // the window at zero so the drain-time copy below is exact.
    util::scan::reset_thread_counters();
    epoll_event events[64];
    for (;;) {
      const int n = ::epoll_wait(epoll_fd_.get(), events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll fd gone — tear down
      }
      for (int i = 0; i < n; ++i) {
        void* ptr = events[i].data.ptr;
        if (ptr == nullptr) {
          drain_eventfd();
          while (auto fd = handoff.try_pop()) add_connection(*fd);
          continue;
        }
        Connection* c = static_cast<Connection*>(ptr);
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(c);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) handle_readable(c);
        // handle_readable may have closed (fd == -1); the Connection
        // object itself is pooled, never freed, so the check is safe.
        if (c->fd >= 0 && (events[i].events & EPOLLOUT) != 0) flush(c);
      }
      if (stop.load(std::memory_order_acquire)) {
        // The acceptor is already joined: drain the last handed-off
        // fds (count both edges so accepted == closed reconciles),
        // then drop every live connection.
        while (auto fd = handoff.try_pop()) {
          ::close(*fd);
          ++metrics.net().accepted;
          ++metrics.net().closed;
        }
        for (auto& c : conns_) {
          if (c->fd >= 0) close_connection(c.get());
        }
        break;
      }
    }
    // Off the message path: publish the route cache counters once.
    metrics.record_route_cache(scratch_.route_cache.stats());
    metrics.record_scan(util::scan::thread_counters());
  }

  void drain_eventfd() {
    std::uint64_t count = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(event_fd_.get(), &count, sizeof(count));
  }

  void add_connection(int fd) {
    Connection* c;
    if (!free_.empty()) {
      c = free_.back();
      free_.pop_back();
    } else {
      conns_.push_back(std::make_unique<Connection>());
      c = conns_.back().get();
      c->parser.set_max_body(config_.max_body);
    }
    c->fd = fd;
    c->parser.reset();
    c->out.clear();
    c->out_pos = 0;
    c->parse_ns = 0;
    c->msg_start_ns = 0;
    c->close_after_flush = false;
    c->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = c;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      c->fd = -1;
      free_.push_back(c);
      return;
    }
    ++metrics.net().accepted;
  }

  void close_connection(Connection* c) {
    if (c->fd < 0) return;
    ::close(c->fd);  // the kernel deregisters it from epoll
    c->fd = -1;
    ++metrics.net().closed;
    free_.push_back(c);
  }

  void arm_write(Connection* c, bool on) {
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
    ev.data.ptr = c;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, c->fd, &ev) == 0) {
      c->want_write = on;
    }
  }

  /// kReading: pull bytes until EAGAIN/EOF, feeding the parser as they
  /// arrive. Never reads past a framing error (the hostile stream gets
  /// its 400 and the close flag; reading on would just burn cycles).
  void handle_readable(Connection* c) {
    util::NetCounters& net = metrics.net();
    for (;;) {
      const ssize_t n = ::read(c->fd, read_buf_.data(), read_buf_.size());
      if (n > 0) {
        net.bytes_in += static_cast<std::uint64_t>(n);
        consume(c, std::string_view(read_buf_.data(),
                                    static_cast<std::size_t>(n)));
        if (c->close_after_flush) break;
        continue;
      }
      if (n == 0) {  // peer closed; best-effort flush, then drop
        flush(c);
        if (c->fd >= 0) close_connection(c);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ++net.read_eagain;
        break;
      }
      if (errno == EINTR) continue;
      close_connection(c);
      return;
    }
    flush(c);
  }

  /// Feeds one read chunk through the incremental parser; a chunk may
  /// complete zero, one, or many pipelined messages. Parse spans
  /// accumulate across chunks and are recorded when the message
  /// completes (or dies), so per-stage metrics mean the same thing
  /// they mean in host mode.
  void consume(Connection* c, std::string_view data) {
    while (!data.empty()) {
      if (c->msg_start_ns == 0) c->msg_start_ns = util::metrics_now_ns();
      const std::uint64_t t0 = util::metrics_now_ns();
      const std::size_t used = c->parser.feed(data);
      c->parse_ns += util::metrics_now_ns() - t0;
      data.remove_prefix(used);
      if (c->parser.failed()) {
        // Bytes that never framed a request: 400, close, count it.
        ++processed;
        ++failed;
        status.add(400);
        append_bad_request(c->out);
        c->close_after_flush = true;
        metrics.record_stage(util::Stage::kParse, c->parse_ns);
        c->parse_ns = 0;
        metrics.record_message(util::metrics_now_ns() - c->msg_start_ns);
        c->msg_start_ns = 0;
        return;
      }
      if (!c->parser.done()) {
        XAON_CHECK(data.empty());  // feed() consumes all or completes
        return;
      }
      handle_message(c);
      c->parser.reset();
    }
  }

  /// One complete request: pipeline, optional bounded-retry forward
  /// (identical budget semantics to aon::Server::run_load), response
  /// appended to the connection's drain buffer.
  void handle_message(Connection* c) {
    metrics.record_stage(util::Stage::kParse, c->parse_ns);
    c->parse_ns = 0;
    const http::Request& request = c->parser.request();
    const bool close = request.wants_close();
    const aon::Pipeline::Outcome& outcome =
        pipeline_.process(request, scratch_);
    ++processed;
    if (!outcome.ok) {
      ++failed;
    } else if (outcome.routed_primary) {
      ++primary;
    } else {
      ++error;
    }

    int status_code = outcome.response.status;
    if (outcome.ok && config_.downstream != nullptr) {
      const std::uint64_t fwd_start = util::metrics_now_ns();
      aon::SendStatus verdict = aon::SendStatus::kAck;
      retry_backoff_.reset();
      for (std::size_t attempt = 0;; ++attempt) {
        verdict = config_.downstream->send(outcome.forwarded_wire);
        if (verdict == aon::SendStatus::kAck) break;
        if (attempt + 1 >= config_.forward.max_attempts) break;
        ++retries;
        for (std::uint32_t p = 0; p < config_.forward.backoff_pauses; ++p) {
          retry_backoff_.pause();
        }
      }
      if (verdict == aon::SendStatus::kBusy) {
        status_code = 503;  // transient overload: shed
        ++fwd_shed;
      } else if (verdict == aon::SendStatus::kFail) {
        status_code = 502;  // hard downstream failure
        ++fwd_failures;
      }
      metrics.record_stage(util::Stage::kForward,
                           util::metrics_now_ns() - fwd_start);
    }
    status.add(status_code);
    append_response(outcome.response, status_code, close, c->out);
    if (close) c->close_after_flush = true;
    metrics.record_message(util::metrics_now_ns() - c->msg_start_ns);
    c->msg_start_ns = 0;
    metrics.record_arena(scratch_.arena.bytes_allocated(),
                         scratch_.arena.bytes_retained());
  }

  /// kDraining: write until the buffer empties or the kernel pushes
  /// back. Pushback arms EPOLLOUT; a drained buffer disarms it and
  /// resolves `close_after_flush`.
  void flush(Connection* c) {
    if (c->fd < 0) return;
    util::NetCounters& net = metrics.net();
    while (c->out_pos < c->out.size()) {
      const std::size_t want = c->out.size() - c->out_pos;
      const ssize_t n =
          ::send(c->fd, c->out.data() + c->out_pos, want, MSG_NOSIGNAL);
      if (n > 0) {
        net.bytes_out += static_cast<std::uint64_t>(n);
        c->out_pos += static_cast<std::size_t>(n);
        if (static_cast<std::size_t>(n) < want) ++net.short_writes;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c->want_write) arm_write(c, true);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      close_connection(c);
      return;
    }
    c->out.clear();
    c->out_pos = 0;
    if (c->want_write) arm_write(c, false);
    if (c->close_after_flush) close_connection(c);
  }

  const ServerConfig& config_;
  const aon::Pipeline& pipeline_;
  aon::Pipeline::ProcessScratch scratch_;
  util::Backoff retry_backoff_;
  Fd epoll_fd_;
  Fd event_fd_;
  std::vector<std::unique_ptr<Connection>> conns_;  ///< owns every Connection
  std::vector<Connection*> free_;                   ///< recycling list
  std::vector<char> read_buf_;
};

struct Server::Impl {
  explicit Impl(const ServerConfig& c) : config(c), pipeline(c.use_case) {}

  void accept_loop();

  ServerConfig config;
  aon::Pipeline pipeline;
  Fd listen_fd;
  Fd stop_event;
  std::uint16_t port = 0;
  std::atomic<bool> stopping{false};
  std::vector<std::unique_ptr<Worker>> workers;
  std::thread acceptor;
  ServerStats stats;
  bool running = false;
};

/// Acceptor: accept on the loopback listener, hand each fd to the next
/// worker round-robin. A full handoff ring is waited out with bounded
/// backoff (stop-aware) — connection acceptance applies backpressure
/// instead of dropping, mirroring the bounded queues of host mode.
void Server::Impl::accept_loop() {
  Impl& impl = *this;
  std::size_t next = 0;
  pollfd fds[2] = {{impl.listen_fd.get(), POLLIN, 0},
                   {impl.stop_event.get(), POLLIN, 0}};
  for (;;) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // stop requested
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    for (;;) {
      const int fd = ::accept4(impl.listen_fd.get(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // EAGAIN: drained; anything else: poll again
      }
      set_nodelay(fd);
      Worker& w = *impl.workers[next];
      next = (next + 1) % impl.workers.size();
      util::Backoff backoff;
      bool queued = false;
      while (!impl.stopping.load(std::memory_order_acquire)) {
        if (w.handoff.try_push(fd)) {
          queued = true;
          break;
        }
        backoff.pause();
      }
      if (!queued) {
        ::close(fd);
        continue;
      }
      w.wake();
    }
  }
}

Server::Server(const ServerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {
  XAON_CHECK(config.workers >= 1);
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  Impl& im = *impl_;
  XAON_CHECK(!im.running);
  im.listen_fd = listen_tcp(im.config.port, &im.port, error);
  if (!im.listen_fd.valid()) return false;
  im.stop_event.reset(::eventfd(0, EFD_CLOEXEC));
  if (!im.stop_event.valid()) {
    if (error != nullptr) error->assign("eventfd failed");
    im.listen_fd.reset();
    return false;
  }
  im.workers.reserve(im.config.workers);
  for (std::size_t w = 0; w < im.config.workers; ++w) {
    im.workers.push_back(std::make_unique<Worker>(im.config, im.pipeline));
  }
  for (auto& w : im.workers) {
    if (!w->start(error)) {
      // Unwind the ones already running.
      for (auto& started : im.workers) {
        if (started->thread.joinable()) {
          started->stop.store(true, std::memory_order_release);
          started->wake();
          started->thread.join();
        }
      }
      im.workers.clear();
      im.listen_fd.reset();
      im.stop_event.reset();
      return false;
    }
  }
  im.acceptor = std::thread([this] { impl_->accept_loop(); });
  im.running = true;
  return true;
}

std::uint16_t Server::port() const { return impl_->port; }

bool Server::running() const { return impl_->running; }

const ServerStats& Server::stop() {
  Impl& im = *impl_;
  if (!im.running) return im.stats;
  // Acceptor first: after this join no handoff producer exists, so the
  // workers' final drain is race-free (see the file-top contract).
  im.stopping.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(im.stop_event.get(), &one, sizeof(one));
  im.acceptor.join();
  im.listen_fd.reset();
  for (auto& w : im.workers) {
    w->stop.store(true, std::memory_order_release);
    w->wake();
  }
  for (auto& w : im.workers) w->thread.join();

  ServerStats& s = im.stats;
  for (auto& w : im.workers) {
    s.messages += w->processed;
    s.routed_primary += w->primary;
    s.routed_error += w->error;
    s.failed += w->failed;
    s.status.merge(w->status);
    s.forward_retries += w->retries;
    s.forward_failures += w->fwd_failures;
    s.forward_shed += w->fwd_shed;
    s.metrics.add_worker(w->metrics);
  }
  s.metrics.capture_probe_sites();
  // Every processed message landed in exactly one bucket.
  XAON_CHECK(s.status.total() == s.messages);
  im.workers.clear();
  im.stop_event.reset();
  im.running = false;
  return s;
}

const ServerStats& Server::stats() const { return impl_->stats; }

const ServerConfig& Server::config() const { return impl_->config; }

}  // namespace xaon::net
