#include "xaon/net/downstream.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "xaon/util/metrics.hpp"  // metrics_now_ns for the deadline clock

namespace xaon::net {

namespace {

std::uint64_t now_ms() { return util::metrics_now_ns() / 1'000'000; }

/// Nonblocking loopback connect bounded by `deadline_abs_ms`.
/// Returns the connected fd, or -1 with `*busy` telling timeout (true)
/// apart from hard refusal (false).
int connect_deadline(std::uint16_t port, std::uint64_t deadline_abs_ms,
                     bool* busy) {
  *busy = false;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    set_nodelay(fd);
    return fd;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  for (;;) {
    const std::uint64_t now = now_ms();
    if (now >= deadline_abs_ms) {
      ::close(fd);
      *busy = true;  // peer did not answer in time — transient
      return -1;
    }
    pollfd p{fd, POLLOUT, 0};
    const int r = ::poll(&p, 1, static_cast<int>(deadline_abs_ms - now));
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) {
      ::close(fd);
      *busy = true;
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;  // refused / unreachable — hard failure
    }
    set_nodelay(fd);
    return fd;
  }
}

}  // namespace

SocketDownstream::SocketDownstream(std::uint16_t port,
                                   std::uint32_t deadline_ms)
    : port_(port), deadline_ms_(deadline_ms) {}

SocketDownstream::~SocketDownstream() { close_all(); }

int SocketDownstream::check_out() {
  util::MutexLock lock(mu_);
  if (idle_.empty()) return -1;
  const int fd = idle_.back();
  idle_.pop_back();
  return fd;
}

void SocketDownstream::check_in(int fd) {
  util::MutexLock lock(mu_);
  idle_.push_back(fd);
}

void SocketDownstream::close_all() {
  util::MutexLock lock(mu_);
  for (const int fd : idle_) ::close(fd);
  idle_.clear();
}

aon::SendStatus SocketDownstream::send(std::string_view wire) {
  const std::uint64_t deadline = now_ms() + deadline_ms_;
  int fd = check_out();
  bool fresh = false;
  if (fd < 0) {
    bool busy = false;
    fd = connect_deadline(port_, deadline, &busy);
    if (fd < 0) return busy ? aon::SendStatus::kBusy : aon::SendStatus::kFail;
    fresh = true;
  }
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + pos, wire.size() - pos, MSG_NOSIGNAL);
    if (n > 0) {
      pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const std::uint64_t now = now_ms();
      if (now >= deadline) {
        // A pooled fd that stalls may just be a dead peer's stale
        // socket; a fresh one stalling really is backpressure. Either
        // way the connection is in an unknown half-written state —
        // drop it and report transient overload.
        ::close(fd);
        return aon::SendStatus::kBusy;
      }
      pollfd p{fd, POLLOUT, 0};
      const int r = ::poll(&p, 1, static_cast<int>(deadline - now));
      if (r < 0 && errno != EINTR) {
        ::close(fd);
        return aon::SendStatus::kFail;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET on a pooled fd usually means the peer closed an
    // idle connection — retrying on a fresh socket is the caller's
    // retry budget's job, but a stale pool shouldn't burn an attempt:
    // reconnect once inline before giving a verdict.
    ::close(fd);
    if (!fresh && pos == 0) {
      bool busy = false;
      fd = connect_deadline(port_, deadline, &busy);
      if (fd < 0) {
        return busy ? aon::SendStatus::kBusy : aon::SendStatus::kFail;
      }
      fresh = true;
      continue;
    }
    return aon::SendStatus::kFail;
  }
  check_in(fd);
  return aon::SendStatus::kAck;
}

SinkServer::~SinkServer() { stop(); }

bool SinkServer::start(std::string* error) {
  listen_fd_ = listen_tcp(0, &port_, error);
  if (!listen_fd_.valid()) return false;
  stop_event_.reset(::eventfd(0, EFD_CLOEXEC));
  if (!stop_event_.valid()) {
    if (error != nullptr) error->assign("eventfd failed");
    listen_fd_.reset();
    return false;
  }
  thread_ = std::thread([this] { run(); });
  return true;
}

void SinkServer::stop() {
  if (!thread_.joinable()) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(stop_event_.get(), &one, sizeof(one));
  thread_.join();
  listen_fd_.reset();
  stop_event_.reset();
}

void SinkServer::run() {
  std::vector<pollfd> fds;
  fds.push_back({listen_fd_.get(), POLLIN, 0});
  fds.push_back({stop_event_.get(), POLLIN, 0});
  char buf[64 * 1024];
  for (;;) {
    for (auto& p : fds) p.revents = 0;
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;  // EAGAIN: drained
        fds.push_back({fd, POLLIN, 0});
        accepted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Drain data connections; drop the closed ones (swap-erase keeps
    // the first two control slots in place).
    for (std::size_t i = 2; i < fds.size();) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        ++i;
        continue;
      }
      bool open = true;
      for (;;) {
        const ssize_t n = ::read(fds[i].fd, buf, sizeof(buf));
        if (n > 0) {
          bytes_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        open = false;  // EOF or error
        break;
      }
      if (open) {
        ++i;
      } else {
        ::close(fds[i].fd);
        fds[i] = fds.back();
        fds.pop_back();
      }
    }
  }
  for (std::size_t i = 2; i < fds.size(); ++i) ::close(fds[i].fd);
}

}  // namespace xaon::net
