#include "xaon/util/metrics.hpp"

#include <algorithm>

#include "xaon/util/str.hpp"

// Everything in this file runs off the message path (merge after join,
// JSON dump) — allocation is fine here; the hot recording helpers live
// inline in metrics.hpp and stay allocation-free.

namespace xaon::util {

std::string_view stage_name(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kRoute: return "route";
    case Stage::kSerialize: return "serialize";
    case Stage::kForward: return "forward";
  }
  return "?";
}

void LatencyTrack::merge(const LatencyTrack& other) {
  if (other.count_ == 0) return;
  hist_.merge(other.hist_);
  sum_ += other.sum_;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
}

void MetricsSnapshot::add_worker(const WorkerMetrics& w) {
  for (std::size_t s = 0; s < kStageCount; ++s) {
    stages[s].merge(w.stage(static_cast<Stage>(s)));
  }
  message.merge(w.message());
  workers.push_back(Worker{w.messages(), w.busy_seconds()});
  route_cache.merge(w.route_cache());
  arena_allocated.merge(w.arena_allocated());
  arena_retained.merge(w.arena_retained());
  net.merge(w.net());
  scan.merge(w.scan_counters());
}

void MetricsSnapshot::capture_probe_sites() {
  probes.clear();
  const std::uint32_t n = probe::site_count();
  probes.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    probes.push_back(ProbeSite{probe::site_name(id), probe::site_kind(id)});
  }
}

std::uint64_t MetricsSnapshot::messages_total() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers) total += w.messages;
  return total;
}

double MetricsSnapshot::busy_seconds_total() const {
  double total = 0.0;
  for (const Worker& w : workers) total += w.busy_seconds;
  return total;
}

double MetricsSnapshot::imbalance() const {
  if (workers.empty()) return 0.0;
  std::uint64_t max_msgs = 0;
  for (const Worker& w : workers) max_msgs = std::max(max_msgs, w.messages);
  const double mean = static_cast<double>(messages_total()) /
                      static_cast<double>(workers.size());
  return mean > 0.0 ? static_cast<double>(max_msgs) / mean : 0.0;
}

namespace {

const char* site_kind_name(probe::SiteKind kind) {
  switch (kind) {
    case probe::SiteKind::kLoop: return "loop";
    case probe::SiteKind::kData: return "data";
    case probe::SiteKind::kCall: return "call";
  }
  return "?";
}

void append_track(std::string& out, std::string_view name,
                  const LatencyTrack& t) {
  out += '"';
  out += name;
  out += format("\": {\"count\": %llu, \"p50_ns\": %llu, \"p90_ns\": %llu, "
                "\"p99_ns\": %llu, \"max_ns\": %llu, \"mean_ns\": %.1f}",
                static_cast<unsigned long long>(t.count()),
                static_cast<unsigned long long>(t.quantile(0.50)),
                static_cast<unsigned long long>(t.quantile(0.90)),
                static_cast<unsigned long long>(t.quantile(0.99)),
                static_cast<unsigned long long>(t.max()), t.mean());
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"stages\": {";
  for (std::size_t s = 0; s < kStageCount; ++s) {
    if (s != 0) out += ", ";
    append_track(out, stage_name(static_cast<Stage>(s)), stages[s]);
  }
  out += "}, ";
  append_track(out, "message", message);
  out += format(", \"imbalance\": %.4f, \"workers\": [", imbalance());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (i != 0) out += ", ";
    out += format("{\"messages\": %llu, \"busy_seconds\": %.6f}",
                  static_cast<unsigned long long>(workers[i].messages),
                  workers[i].busy_seconds);
  }
  out += "], \"cache\": ";
  route_cache.append_json(out);
  out += format(", \"arena\": {\"allocated_bytes\": %lld, "
                "\"allocated_high_bytes\": %lld, \"retained_bytes\": %lld, "
                "\"retained_high_bytes\": %lld}",
                static_cast<long long>(arena_allocated.value),
                static_cast<long long>(arena_allocated.high),
                static_cast<long long>(arena_retained.value),
                static_cast<long long>(arena_retained.high));
  out += format(", \"net\": {\"accepted\": %llu, \"closed\": %llu, "
                "\"read_eagain\": %llu, \"short_writes\": %llu, "
                "\"bytes_in\": %llu, \"bytes_out\": %llu}",
                static_cast<unsigned long long>(net.accepted),
                static_cast<unsigned long long>(net.closed),
                static_cast<unsigned long long>(net.read_eagain),
                static_cast<unsigned long long>(net.short_writes),
                static_cast<unsigned long long>(net.bytes_in),
                static_cast<unsigned long long>(net.bytes_out));
  out += format(", \"scan\": {\"bytes\": %llu, \"calls\": %llu, "
                "\"impl\": \"%.*s\"}",
                static_cast<unsigned long long>(scan.bytes),
                static_cast<unsigned long long>(scan.calls),
                static_cast<int>(scan::impl_name(scan::active_impl()).size()),
                scan::impl_name(scan::active_impl()).data());
  out += ", \"probes\": [";
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": \"";
    out += probes[i].name;
    out += "\", \"kind\": \"";
    out += site_kind_name(probes[i].kind);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace xaon::util
