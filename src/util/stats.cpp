#include "xaon/util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "xaon/util/assert.hpp"

namespace xaon::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LogHistogram::add(std::uint64_t value) {
  const int b = value == 0 ? 0 : std::bit_width(value) - 1;
  ++buckets_[b];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) return (i == 63) ? ~0ULL : (2ULL << i) - 1;
  }
  return ~0ULL;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace xaon::util
