#include "xaon/util/flags.hpp"

#include <cstdio>
#include <cstdlib>

#include "xaon/util/str.hpp"

namespace xaon::util {

Flags::Flags(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg == "help") {
      help_ = true;
      continue;
    }
    Given g;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      g.name = std::string(arg.substr(0, eq));
      g.value = std::string(arg.substr(eq + 1));
    } else if (starts_with(arg, "no-")) {
      g.name = std::string(arg.substr(3));
      g.negated = true;
    } else {
      g.name = std::string(arg);
      // `--name value` form: take the next token as value when it is not
      // itself a flag. Booleans given bare still work because boolean()
      // checks for an absent value first.
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        g.value = std::string(argv[i + 1]);
        ++i;
      }
    }
    given_.push_back(std::move(g));
  }
}

Flags::Given* Flags::find(std::string_view name) {
  for (auto& g : given_) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

std::string Flags::str(std::string_view name, std::string_view default_value,
                       std::string_view help) {
  decls_.push_back(
      {std::string(name), std::string(default_value), std::string(help)});
  if (Given* g = find(name)) {
    g->consumed = true;
    if (g->value) return *g->value;
  }
  return std::string(default_value);
}

std::int64_t Flags::i64(std::string_view name, std::int64_t default_value,
                        std::string_view help) {
  decls_.push_back(
      {std::string(name), std::to_string(default_value), std::string(help)});
  if (Given* g = find(name)) {
    g->consumed = true;
    if (g->value) {
      if (auto v = parse_i64(*g->value)) return *v;
      std::fprintf(stderr, "bad integer for --%s: %s\n", g->name.c_str(),
                   g->value->c_str());
      std::exit(2);
    }
  }
  return default_value;
}

double Flags::f64(std::string_view name, double default_value,
                  std::string_view help) {
  decls_.push_back(
      {std::string(name), format("%g", default_value), std::string(help)});
  if (Given* g = find(name)) {
    g->consumed = true;
    if (g->value) {
      if (auto v = parse_f64(*g->value)) return *v;
      std::fprintf(stderr, "bad number for --%s: %s\n", g->name.c_str(),
                   g->value->c_str());
      std::exit(2);
    }
  }
  return default_value;
}

bool Flags::boolean(std::string_view name, bool default_value,
                    std::string_view help) {
  decls_.push_back({std::string(name), default_value ? "true" : "false",
                    std::string(help)});
  if (Given* g = find(name)) {
    g->consumed = true;
    if (g->negated) return false;
    if (!g->value) return true;
    if (iequals(*g->value, "true") || *g->value == "1") return true;
    if (iequals(*g->value, "false") || *g->value == "0") return false;
    // `--flag something` where something was actually positional: treat
    // the bare flag as true and restore the token.
    positional_.push_back(*g->value);
    return true;
  }
  return default_value;
}

std::string Flags::usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& d : decls_) {
    out += format("  --%-24s %s (default: %s)\n", d.name.c_str(),
                  d.help.c_str(), d.default_repr.c_str());
  }
  return out;
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& g : given_) {
    if (!g.consumed) out.push_back(g.name);
  }
  return out;
}

}  // namespace xaon::util
