#include "xaon/util/scan.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define XAON_SCAN_X86 1
#include <immintrin.h>
#else
#define XAON_SCAN_X86 0
#endif

// Every kernel comes in up to four implementations that must agree
// byte-for-byte (tests/util_scan_test.cpp runs the differential). The
// scalar bodies are the executable specification; SWAR/SSE2/AVX2 are
// the same predicates evaluated 8/16/32 bytes per branch. None of them
// reads past p + n: vector blocks run only while a full block fits and
// the remainder always falls through to the scalar tail.

namespace xaon::util::scan {

namespace {

// --- scalar reference ------------------------------------------------------

bool is_name_byte(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '-' ||
         c == '.' || c >= 0x80;
}

bool is_ws_byte(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

std::size_t find_byte_scalar(const char* p, std::size_t n, char c) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == c) return i;
  }
  return n;
}

std::size_t find_any_scalar(const char* p, std::size_t n,
                            const ByteClass& cls) {
  for (std::size_t i = 0; i < n; ++i) {
    if (cls.contains(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

std::size_t skip_class_scalar(const char* p, std::size_t n,
                              const ByteClass& cls) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!cls.contains(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

std::size_t find_crlf_scalar(const char* p, std::size_t n) {
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (p[i] == '\r' && p[i + 1] == '\n') return i;
  }
  return n;
}

std::size_t name_run_scalar(const char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_name_byte(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

std::size_t skip_ws_scalar(const char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_ws_byte(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

std::size_t find_markup_scalar(const char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == '<' || p[i] == '&') return i;
  }
  return n;
}

// --- SWAR over uint64_t ----------------------------------------------------
// Little-endian only: first_marked maps the lowest set high-bit to the
// lowest-addressed byte via ctz. On a big-endian host the SWAR tier
// simply reuses the scalar bodies (still available, still agreeing).

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define XAON_SCAN_SWAR 1

constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
constexpr std::uint64_t kHighs = 0x8080808080808080ULL;

std::uint64_t load64(const char* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

constexpr std::uint64_t bcast(unsigned char b) { return kOnes * b; }

/// High bit set in every byte of x that is zero (exact, no false
/// positives — Hacker's Delight "find first zero byte").
constexpr std::uint64_t zero_bytes(std::uint64_t x) {
  return (x - kOnes) & ~x & kHighs;
}

constexpr std::uint64_t eq_bytes(std::uint64_t x, unsigned char b) {
  return zero_bytes(x ^ bcast(b));
}

/// Byte index of the lowest marked byte in a high-bit mask.
std::size_t first_marked(std::uint64_t mask) {
  return static_cast<std::size_t>(__builtin_ctzll(mask)) >> 3;
}

/// High bit set where byte >= lo. Valid only when every byte of `xlow`
/// has its top bit clear (mask with ~kHighs first): adding 0x80 then
/// subtracting lo cannot borrow across byte lanes.
constexpr std::uint64_t ge7(std::uint64_t xlow, unsigned char lo) {
  return ((xlow | kHighs) - bcast(lo)) & kHighs;
}

/// High bit set where lo <= byte <= hi (ASCII ranges, hi < 0x80).
constexpr std::uint64_t in_range7(std::uint64_t xlow, unsigned char lo,
                                  unsigned char hi) {
  return ge7(xlow, lo) & ~ge7(xlow, static_cast<unsigned char>(hi + 1));
}

std::size_t find_byte_swar(const char* p, std::size_t n, char c) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t m =
        eq_bytes(load64(p + i), static_cast<unsigned char>(c));
    if (m != 0) return i + first_marked(m);
  }
  for (; i < n; ++i) {
    if (p[i] == c) return i;
  }
  return n;
}

std::size_t find_markup_swar(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = load64(p + i);
    const std::uint64_t m = eq_bytes(w, '<') | eq_bytes(w, '&');
    if (m != 0) return i + first_marked(m);
  }
  for (; i < n; ++i) {
    if (p[i] == '<' || p[i] == '&') return i;
  }
  return n;
}

std::size_t skip_ws_swar(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = load64(p + i);
    const std::uint64_t ws = eq_bytes(w, ' ') | eq_bytes(w, '\t') |
                             eq_bytes(w, '\r') | eq_bytes(w, '\n');
    const std::uint64_t stop = ~ws & kHighs;
    if (stop != 0) return i + first_marked(stop);
  }
  for (; i < n; ++i) {
    if (!is_ws_byte(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

std::size_t name_run_swar(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = load64(p + i);
    const std::uint64_t high = w & kHighs;  // >= 0x80: always a NameChar
    // Range tests run on the low 7 bits; a high byte's low bits may
    // alias into a range, but `high` already marks it a member, so the
    // union stays exact.
    const std::uint64_t xl = w & ~kHighs;
    const std::uint64_t name =
        high | in_range7(xl, 'a', 'z') | in_range7(xl, 'A', 'Z') |
        in_range7(xl, '0', '9') | eq_bytes(w, '_') | eq_bytes(w, ':') |
        eq_bytes(w, '-') | eq_bytes(w, '.');
    const std::uint64_t stop = ~name & kHighs;
    if (stop != 0) return i + first_marked(stop);
  }
  for (; i < n; ++i) {
    if (!is_name_byte(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

std::size_t find_crlf_swar(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t m = eq_bytes(load64(p + i), '\r');
    while (m != 0) {
      const std::size_t idx = i + first_marked(m);
      if (idx + 1 < n && p[idx + 1] == '\n') return idx;
      m &= m - 1;  // clear the lowest candidate, keep scanning
    }
  }
  for (; i + 1 < n; ++i) {
    if (p[i] == '\r' && p[i + 1] == '\n') return i;
  }
  return n;
}

#else
#define XAON_SCAN_SWAR 0
#endif  // little-endian

// --- SSE2 ------------------------------------------------------------------
// Specialized kernels only: SSE2 has no byte shuffle, so the generic
// ByteClass kernels stay on the bytewise path at this tier (the nibble
// classifier needs pshufb, which arrives with the AVX2 tier here).

#if XAON_SCAN_X86

#define XAON_TARGET_SSE2 __attribute__((target("sse2")))
#define XAON_TARGET_AVX2 __attribute__((target("avx2")))

XAON_TARGET_SSE2 std::size_t find_byte_sse2(const char* p, std::size_t n,
                                            char c) {
  std::size_t i = 0;
  const __m128i needle = _mm_set1_epi8(c);
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned m = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(x, needle)));
    if (m != 0) return i + static_cast<std::size_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (p[i] == c) return i;
  }
  return n;
}

XAON_TARGET_SSE2 std::size_t find_markup_sse2(const char* p, std::size_t n) {
  std::size_t i = 0;
  const __m128i lt = _mm_set1_epi8('<');
  const __m128i amp = _mm_set1_epi8('&');
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned m = static_cast<unsigned>(_mm_movemask_epi8(
        _mm_or_si128(_mm_cmpeq_epi8(x, lt), _mm_cmpeq_epi8(x, amp))));
    if (m != 0) return i + static_cast<std::size_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (p[i] == '<' || p[i] == '&') return i;
  }
  return n;
}

XAON_TARGET_SSE2 std::size_t skip_ws_sse2(const char* p, std::size_t n) {
  std::size_t i = 0;
  const __m128i sp = _mm_set1_epi8(' ');
  const __m128i tab = _mm_set1_epi8('\t');
  const __m128i cr = _mm_set1_epi8('\r');
  const __m128i lf = _mm_set1_epi8('\n');
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i ws = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(x, sp), _mm_cmpeq_epi8(x, tab)),
        _mm_or_si128(_mm_cmpeq_epi8(x, cr), _mm_cmpeq_epi8(x, lf)));
    const unsigned stop =
        ~static_cast<unsigned>(_mm_movemask_epi8(ws)) & 0xFFFFu;
    if (stop != 0) return i + static_cast<std::size_t>(__builtin_ctz(stop));
  }
  for (; i < n; ++i) {
    if (!is_ws_byte(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

/// 0xFF where lo <= byte <= hi, unsigned compare built from saturating
/// subtraction (SSE2 has only signed byte compares).
XAON_TARGET_SSE2 __m128i range_mask_sse2(__m128i x, char lo, char hi) {
  const __m128i below = _mm_subs_epu8(x, _mm_set1_epi8(hi));  // 0 iff x <= hi
  const __m128i above = _mm_subs_epu8(_mm_set1_epi8(lo), x);  // 0 iff x >= lo
  return _mm_cmpeq_epi8(_mm_or_si128(below, above), _mm_setzero_si128());
}

XAON_TARGET_SSE2 std::size_t name_run_sse2(const char* p, std::size_t n) {
  std::size_t i = 0;
  const __m128i us = _mm_set1_epi8('_');
  const __m128i co = _mm_set1_epi8(':');
  const __m128i da = _mm_set1_epi8('-');
  const __m128i dot = _mm_set1_epi8('.');
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i ranges = _mm_or_si128(
        _mm_or_si128(range_mask_sse2(x, 'a', 'z'),
                     range_mask_sse2(x, 'A', 'Z')),
        range_mask_sse2(x, '0', '9'));
    const __m128i punct = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(x, us), _mm_cmpeq_epi8(x, co)),
        _mm_or_si128(_mm_cmpeq_epi8(x, da), _mm_cmpeq_epi8(x, dot)));
    unsigned name = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_or_si128(ranges, punct)));
    name |= static_cast<unsigned>(_mm_movemask_epi8(x));  // >= 0x80
    const unsigned stop = ~name & 0xFFFFu;
    if (stop != 0) return i + static_cast<std::size_t>(__builtin_ctz(stop));
  }
  for (; i < n; ++i) {
    if (!is_name_byte(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

XAON_TARGET_SSE2 std::size_t find_crlf_sse2(const char* p, std::size_t n) {
  std::size_t i = 0;
  const __m128i cr = _mm_set1_epi8('\r');
  const __m128i lf = _mm_set1_epi8('\n');
  // The LF vector is the CR vector's window shifted by one byte, so a
  // pair straddling the block edge still matches; needs one byte past
  // the block, hence i + 17 <= n.
  for (; i + 17 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + 1));
    const unsigned m = static_cast<unsigned>(_mm_movemask_epi8(
        _mm_and_si128(_mm_cmpeq_epi8(a, cr), _mm_cmpeq_epi8(b, lf))));
    if (m != 0) return i + static_cast<std::size_t>(__builtin_ctz(m));
  }
  for (; i + 1 < n; ++i) {
    if (p[i] == '\r' && p[i + 1] == '\n') return i;
  }
  return n;
}

// --- AVX2 ------------------------------------------------------------------
//
// Two hard-won shape rules for the AVX2 kernels, both measured on the
// real pipeline (CBR/SV end-to-end, not just micro_scan):
//
// 1. Never call the SSE2 kernels for the tails: those are compiled as
//    legacy-SSE (non-VEX), and entering them with dirty upper YMM
//    halves costs a many-hundred-cycle state transition on Intel
//    cores — GCC does not reliably emit vzeroupper before local
//    cross-target calls (measured: ~25x on sub-block inputs, -30%
//    end-to-end). The 128-bit blocks below use _mm_* intrinsics
//    *inside* the target("avx2") functions, so they compile to VEX and
//    transition nothing.
// 2. Lead with one 128-bit block and only enter the 256-bit loop for
//    data past it. Parser scans are called with the whole remaining
//    input but usually stop within a few bytes (a name, a quote, one
//    space), so per-call latency of the first block dominates — and
//    the 128-bit chain is cheaper to start (no 256-bit warm-up or
//    license involvement for short scans).

XAON_TARGET_AVX2 unsigned find_byte_mask128(const char* p, char c) {
  const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return static_cast<unsigned>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(x, _mm_set1_epi8(c))));
}

XAON_TARGET_AVX2 std::size_t find_byte_avx2(const char* p, std::size_t n,
                                            char c) {
  std::size_t i = 0;
  if (n >= 16) {
    const unsigned m = find_byte_mask128(p, c);
    if (m != 0) return static_cast<std::size_t>(__builtin_ctz(m));
    i = 16;
    if (i + 32 <= n) {
      const __m256i needle = _mm256_set1_epi8(c);
      for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
        const unsigned m2 = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, needle)));
        if (m2 != 0) return i + static_cast<std::size_t>(__builtin_ctz(m2));
      }
    }
    if (i + 16 <= n) {
      const unsigned t = find_byte_mask128(p + i, c);
      if (t != 0) return i + static_cast<std::size_t>(__builtin_ctz(t));
      i += 16;
    }
  }
  for (; i < n; ++i) {
    if (p[i] == c) return i;
  }
  return n;
}

XAON_TARGET_AVX2 unsigned markup_mask128(const char* p) {
  const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return static_cast<unsigned>(_mm_movemask_epi8(
      _mm_or_si128(_mm_cmpeq_epi8(x, _mm_set1_epi8('<')),
                   _mm_cmpeq_epi8(x, _mm_set1_epi8('&')))));
}

XAON_TARGET_AVX2 std::size_t find_markup_avx2(const char* p, std::size_t n) {
  std::size_t i = 0;
  if (n >= 16) {
    const unsigned m = markup_mask128(p);
    if (m != 0) return static_cast<std::size_t>(__builtin_ctz(m));
    i = 16;
    if (i + 32 <= n) {
      const __m256i lt = _mm256_set1_epi8('<');
      const __m256i amp = _mm256_set1_epi8('&');
      for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
        const unsigned m2 = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_or_si256(_mm256_cmpeq_epi8(x, lt),
                                                 _mm256_cmpeq_epi8(x, amp))));
        if (m2 != 0) return i + static_cast<std::size_t>(__builtin_ctz(m2));
      }
    }
    if (i + 16 <= n) {
      const unsigned t = markup_mask128(p + i);
      if (t != 0) return i + static_cast<std::size_t>(__builtin_ctz(t));
      i += 16;
    }
  }
  for (; i < n; ++i) {
    if (p[i] == '<' || p[i] == '&') return i;
  }
  return n;
}

/// Member mask: 1-bits where the byte IS whitespace.
XAON_TARGET_AVX2 unsigned ws_mask128(const char* p) {
  const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i ws = _mm_or_si128(
      _mm_or_si128(_mm_cmpeq_epi8(x, _mm_set1_epi8(' ')),
                   _mm_cmpeq_epi8(x, _mm_set1_epi8('\t'))),
      _mm_or_si128(_mm_cmpeq_epi8(x, _mm_set1_epi8('\r')),
                   _mm_cmpeq_epi8(x, _mm_set1_epi8('\n'))));
  return static_cast<unsigned>(_mm_movemask_epi8(ws));
}

XAON_TARGET_AVX2 std::size_t skip_ws_avx2(const char* p, std::size_t n) {
  std::size_t i = 0;
  if (n >= 16) {
    const unsigned stop = ~ws_mask128(p) & 0xFFFFu;
    if (stop != 0) return static_cast<std::size_t>(__builtin_ctz(stop));
    i = 16;
    if (i + 32 <= n) {
      const __m256i sp = _mm256_set1_epi8(' ');
      const __m256i tab = _mm256_set1_epi8('\t');
      const __m256i cr = _mm256_set1_epi8('\r');
      const __m256i lf = _mm256_set1_epi8('\n');
      for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
        const __m256i ws = _mm256_or_si256(
            _mm256_or_si256(_mm256_cmpeq_epi8(x, sp),
                            _mm256_cmpeq_epi8(x, tab)),
            _mm256_or_si256(_mm256_cmpeq_epi8(x, cr),
                            _mm256_cmpeq_epi8(x, lf)));
        const unsigned s2 = ~static_cast<unsigned>(_mm256_movemask_epi8(ws));
        if (s2 != 0) return i + static_cast<std::size_t>(__builtin_ctz(s2));
      }
    }
    if (i + 16 <= n) {
      const unsigned t = ~ws_mask128(p + i) & 0xFFFFu;
      if (t != 0) return i + static_cast<std::size_t>(__builtin_ctz(t));
      i += 16;
    }
  }
  for (; i < n; ++i) {
    if (!is_ws_byte(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

XAON_TARGET_AVX2 __m256i range_mask_avx2(__m256i x, char lo, char hi) {
  const __m256i below = _mm256_subs_epu8(x, _mm256_set1_epi8(hi));
  const __m256i above = _mm256_subs_epu8(_mm256_set1_epi8(lo), x);
  return _mm256_cmpeq_epi8(_mm256_or_si256(below, above),
                           _mm256_setzero_si256());
}

/// VEX-encoded 128-bit range mask for the AVX2 kernels' tails (NOT the
/// legacy-SSE range_mask_sse2 — see the transition note above).
XAON_TARGET_AVX2 __m128i range_mask128_avx2(__m128i x, char lo, char hi) {
  const __m128i below = _mm_subs_epu8(x, _mm_set1_epi8(hi));
  const __m128i above = _mm_subs_epu8(_mm_set1_epi8(lo), x);
  return _mm_cmpeq_epi8(_mm_or_si128(below, above), _mm_setzero_si128());
}

/// Member mask: 1-bits where the byte is a NameChar.
XAON_TARGET_AVX2 unsigned name_mask128(const char* p) {
  const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i ranges =
      _mm_or_si128(_mm_or_si128(range_mask128_avx2(x, 'a', 'z'),
                                range_mask128_avx2(x, 'A', 'Z')),
                   range_mask128_avx2(x, '0', '9'));
  const __m128i punct = _mm_or_si128(
      _mm_or_si128(_mm_cmpeq_epi8(x, _mm_set1_epi8('_')),
                   _mm_cmpeq_epi8(x, _mm_set1_epi8(':'))),
      _mm_or_si128(_mm_cmpeq_epi8(x, _mm_set1_epi8('-')),
                   _mm_cmpeq_epi8(x, _mm_set1_epi8('.'))));
  unsigned name = static_cast<unsigned>(
      _mm_movemask_epi8(_mm_or_si128(ranges, punct)));
  name |= static_cast<unsigned>(_mm_movemask_epi8(x));  // >= 0x80
  return name;
}

XAON_TARGET_AVX2 std::size_t name_run_avx2(const char* p, std::size_t n) {
  std::size_t i = 0;
  if (n >= 16) {
    const unsigned stop = ~name_mask128(p) & 0xFFFFu;
    if (stop != 0) return static_cast<std::size_t>(__builtin_ctz(stop));
    i = 16;
    if (i + 32 <= n) {
      const __m256i us = _mm256_set1_epi8('_');
      const __m256i co = _mm256_set1_epi8(':');
      const __m256i da = _mm256_set1_epi8('-');
      const __m256i dot = _mm256_set1_epi8('.');
      for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
        const __m256i ranges = _mm256_or_si256(
            _mm256_or_si256(range_mask_avx2(x, 'a', 'z'),
                            range_mask_avx2(x, 'A', 'Z')),
            range_mask_avx2(x, '0', '9'));
        const __m256i punct = _mm256_or_si256(
            _mm256_or_si256(_mm256_cmpeq_epi8(x, us),
                            _mm256_cmpeq_epi8(x, co)),
            _mm256_or_si256(_mm256_cmpeq_epi8(x, da),
                            _mm256_cmpeq_epi8(x, dot)));
        unsigned name = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_or_si256(ranges, punct)));
        name |= static_cast<unsigned>(_mm256_movemask_epi8(x));  // >= 0x80
        const unsigned stop2 = ~name;
        if (stop2 != 0) {
          return i + static_cast<std::size_t>(__builtin_ctz(stop2));
        }
      }
    }
    if (i + 16 <= n) {
      const unsigned t = ~name_mask128(p + i) & 0xFFFFu;
      if (t != 0) return i + static_cast<std::size_t>(__builtin_ctz(t));
      i += 16;
    }
  }
  for (; i < n; ++i) {
    if (!is_name_byte(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

/// CR-at-i AND LF-at-i+1 mask; reads p[0..16], so needs 17 valid bytes.
XAON_TARGET_AVX2 unsigned crlf_mask128(const char* p) {
  const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1));
  return static_cast<unsigned>(_mm_movemask_epi8(
      _mm_and_si128(_mm_cmpeq_epi8(a, _mm_set1_epi8('\r')),
                    _mm_cmpeq_epi8(b, _mm_set1_epi8('\n')))));
}

XAON_TARGET_AVX2 std::size_t find_crlf_avx2(const char* p, std::size_t n) {
  std::size_t i = 0;
  if (n >= 17) {
    const unsigned m = crlf_mask128(p);
    if (m != 0) return static_cast<std::size_t>(__builtin_ctz(m));
    i = 16;
    if (i + 33 <= n) {
      const __m256i cr = _mm256_set1_epi8('\r');
      const __m256i lf = _mm256_set1_epi8('\n');
      for (; i + 33 <= n; i += 32) {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 1));
        const unsigned m2 = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_and_si256(
                _mm256_cmpeq_epi8(a, cr), _mm256_cmpeq_epi8(b, lf))));
        if (m2 != 0) return i + static_cast<std::size_t>(__builtin_ctz(m2));
      }
    }
    if (i + 17 <= n) {
      const unsigned t = crlf_mask128(p + i);
      if (t != 0) return i + static_cast<std::size_t>(__builtin_ctz(t));
      i += 16;
    }
  }
  for (; i + 1 < n; ++i) {
    if (p[i] == '\r' && p[i + 1] == '\n') return i;
  }
  return n;
}

/// Nibble-table classifier (pshufb): membership of ASCII byte b is
/// lo_tab[b & 15] & (1 << (b >> 4)); pshufb's bit-7 zeroing plus the
/// zeroed upper half of hi_tab make every byte >= 0x80 classify as
/// non-member, and the uniform high flag patches those lanes from the
/// sign-bit movemask. Classes whose high half is NOT uniform cannot be
/// encoded this way and take the bytewise path instead.
XAON_TARGET_AVX2 unsigned class_member_mask_avx2(__m256i x,
                                                 const ByteClass& cls) {
  const __m256i lo_tab = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(cls.lo_tab())));
  const __m256i hi_tab = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64, static_cast<char>(128), 0, 0, 0,
                    0, 0, 0, 0, 0));
  const __m256i hi_nib = _mm256_and_si256(_mm256_srli_epi16(x, 4),
                                          _mm256_set1_epi8(0x0F));
  const __m256i hits = _mm256_and_si256(_mm256_shuffle_epi8(lo_tab, x),
                                        _mm256_shuffle_epi8(hi_tab, hi_nib));
  unsigned member = ~static_cast<unsigned>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(hits, _mm256_setzero_si256())));
  if (cls.high_member()) {
    member |= static_cast<unsigned>(_mm256_movemask_epi8(x));
  }
  return member;
}

/// 128-bit lane of the same classifier for the kernels' tails.
XAON_TARGET_AVX2 unsigned class_member_mask128_avx2(__m128i x,
                                                    const ByteClass& cls) {
  const __m128i lo_tab =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(cls.lo_tab()));
  const __m128i hi_tab =
      _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64, static_cast<char>(128), 0, 0, 0,
                    0, 0, 0, 0, 0);
  const __m128i hi_nib =
      _mm_and_si128(_mm_srli_epi16(x, 4), _mm_set1_epi8(0x0F));
  const __m128i hits = _mm_and_si128(_mm_shuffle_epi8(lo_tab, x),
                                     _mm_shuffle_epi8(hi_tab, hi_nib));
  unsigned member = ~static_cast<unsigned>(_mm_movemask_epi8(
                        _mm_cmpeq_epi8(hits, _mm_setzero_si128()))) &
                    0xFFFFu;
  if (cls.high_member()) {
    member |= static_cast<unsigned>(_mm_movemask_epi8(x));
  }
  return member;
}

XAON_TARGET_AVX2 std::size_t find_any_avx2(const char* p, std::size_t n,
                                           const ByteClass& cls) {
  if (!cls.high_uniform()) return find_any_scalar(p, n, cls);
  std::size_t i = 0;
  if (n >= 16) {
    const unsigned m = class_member_mask128_avx2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), cls);
    if (m != 0) return static_cast<std::size_t>(__builtin_ctz(m));
    i = 16;
    for (; i + 32 <= n; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      const unsigned m2 = class_member_mask_avx2(x, cls);
      if (m2 != 0) return i + static_cast<std::size_t>(__builtin_ctz(m2));
    }
    if (i + 16 <= n) {
      const unsigned t = class_member_mask128_avx2(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)), cls);
      if (t != 0) return i + static_cast<std::size_t>(__builtin_ctz(t));
      i += 16;
    }
  }
  for (; i < n; ++i) {
    if (cls.contains(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

XAON_TARGET_AVX2 std::size_t skip_class_avx2(const char* p, std::size_t n,
                                             const ByteClass& cls) {
  if (!cls.high_uniform()) return skip_class_scalar(p, n, cls);
  std::size_t i = 0;
  if (n >= 16) {
    const unsigned stop =
        ~class_member_mask128_avx2(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), cls) &
        0xFFFFu;
    if (stop != 0) return static_cast<std::size_t>(__builtin_ctz(stop));
    i = 16;
    for (; i + 32 <= n; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      const unsigned s2 = ~class_member_mask_avx2(x, cls);
      if (s2 != 0) return i + static_cast<std::size_t>(__builtin_ctz(s2));
    }
    if (i + 16 <= n) {
      const unsigned t =
          ~class_member_mask128_avx2(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)), cls) &
          0xFFFFu;
      if (t != 0) return i + static_cast<std::size_t>(__builtin_ctz(t));
      i += 16;
    }
  }
  for (; i < n; ++i) {
    if (!cls.contains(static_cast<unsigned char>(p[i]))) return i;
  }
  return n;
}

#endif  // XAON_SCAN_X86

// --- dispatch --------------------------------------------------------------

struct KernelTable {
  std::size_t (*find_byte)(const char*, std::size_t, char);
  std::size_t (*find_any_of)(const char*, std::size_t, const ByteClass&);
  std::size_t (*skip_while_class)(const char*, std::size_t, const ByteClass&);
  std::size_t (*find_crlf)(const char*, std::size_t);
  std::size_t (*match_name_run)(const char*, std::size_t);
  std::size_t (*skip_xml_whitespace)(const char*, std::size_t);
  std::size_t (*find_markup_or_amp)(const char*, std::size_t);
};

constexpr KernelTable kScalarTable = {
    find_byte_scalar, find_any_scalar,  skip_class_scalar,  find_crlf_scalar,
    name_run_scalar,  skip_ws_scalar,   find_markup_scalar,
};

#if XAON_SCAN_SWAR
// The generic ByteClass kernels stay bytewise at the SWAR tier: a
// 256-bit membership table has no branch-free uint64 evaluation, and a
// wrong "vectorization" here would just hide the fallback cost.
constexpr KernelTable kSwarTable = {
    find_byte_swar, find_any_scalar, skip_class_scalar, find_crlf_swar,
    name_run_swar,  skip_ws_swar,    find_markup_swar,
};
#else
constexpr KernelTable kSwarTable = kScalarTable;
#endif

#if XAON_SCAN_X86
constexpr KernelTable kSse2Table = {
    find_byte_sse2, find_any_scalar, skip_class_scalar, find_crlf_sse2,
    name_run_sse2,  skip_ws_sse2,    find_markup_sse2,
};
constexpr KernelTable kAvx2Table = {
    find_byte_avx2, find_any_avx2,   skip_class_avx2,   find_crlf_avx2,
    name_run_avx2,  skip_ws_avx2,    find_markup_avx2,
};
#endif

const KernelTable* table_for(Impl impl) {
  switch (impl) {
    case Impl::kScalar: return &kScalarTable;
    case Impl::kSwar: return &kSwarTable;
#if XAON_SCAN_X86
    case Impl::kSse2: return &kSse2Table;
    case Impl::kAvx2: return &kAvx2Table;
#else
    case Impl::kSse2:
    case Impl::kAvx2: return &kScalarTable;
#endif
  }
  return &kScalarTable;
}

struct Dispatch {
  Impl impl;
  const KernelTable* table;
};

Dispatch initial_dispatch() {
  Impl impl = best_impl();
  if (const char* env = std::getenv("XAON_SCAN_IMPL")) {
    Impl parsed = impl;
    if (parse_impl(env, &parsed) && impl_available(parsed)) impl = parsed;
  }
  return Dispatch{impl, table_for(impl)};
}

Dispatch& dispatch() {
  static Dispatch d = initial_dispatch();
  return d;
}

thread_local Counters tl_counters;

/// One accounting point for every public kernel: the return value is
/// the bytes the caller advances over, identical across tiers.
inline std::size_t account(std::size_t r) {
  tl_counters.bytes += r;
  ++tl_counters.calls;
  return r;
}

}  // namespace

std::string_view impl_name(Impl impl) {
  switch (impl) {
    case Impl::kScalar: return "scalar";
    case Impl::kSwar: return "swar";
    case Impl::kSse2: return "sse2";
    case Impl::kAvx2: return "avx2";
  }
  return "?";
}

bool parse_impl(std::string_view name, Impl* out) {
  for (std::size_t i = 0; i < kImplCount; ++i) {
    const Impl impl = static_cast<Impl>(i);
    if (name == impl_name(impl)) {
      *out = impl;
      return true;
    }
  }
  return false;
}

bool impl_available(Impl impl) {
  switch (impl) {
    case Impl::kScalar:
    case Impl::kSwar:
      return true;
    case Impl::kSse2:
#if XAON_SCAN_X86
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Impl::kAvx2:
#if XAON_SCAN_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Impl best_impl() {
  if (impl_available(Impl::kAvx2)) return Impl::kAvx2;
  if (impl_available(Impl::kSse2)) return Impl::kSse2;
  return Impl::kSwar;
}

Impl active_impl() { return dispatch().impl; }

Impl set_impl(Impl impl) {
  if (impl_available(impl)) {
    dispatch() = Dispatch{impl, table_for(impl)};
  }
  return dispatch().impl;
}

Counters& thread_counters() { return tl_counters; }

void reset_thread_counters() { tl_counters = Counters{}; }

std::size_t find_byte(const char* p, std::size_t n, char c) {
  return account(dispatch().table->find_byte(p, n, c));
}

std::size_t find_any_of(const char* p, std::size_t n, const ByteClass& cls) {
  return account(dispatch().table->find_any_of(p, n, cls));
}

std::size_t skip_while_class(const char* p, std::size_t n,
                             const ByteClass& cls) {
  return account(dispatch().table->skip_while_class(p, n, cls));
}

std::size_t find_crlf(const char* p, std::size_t n) {
  return account(dispatch().table->find_crlf(p, n));
}

std::size_t match_name_run(const char* p, std::size_t n) {
  return account(dispatch().table->match_name_run(p, n));
}

std::size_t skip_xml_whitespace(const char* p, std::size_t n) {
  return account(dispatch().table->skip_xml_whitespace(p, n));
}

std::size_t find_markup_or_amp(const char* p, std::size_t n) {
  return account(dispatch().table->find_markup_or_amp(p, n));
}

}  // namespace xaon::util::scan
