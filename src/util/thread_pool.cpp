#include "xaon/util/thread_pool.hpp"

#include <algorithm>

#include "xaon/util/assert.hpp"

namespace xaon::util {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  XAON_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace xaon::util
