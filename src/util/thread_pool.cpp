#include "xaon/util/thread_pool.hpp"

#include <algorithm>

#include "xaon/util/assert.hpp"

namespace xaon::util {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  XAON_CHECK(task != nullptr);
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  // Explicit wait loop (not the predicate overload) so the analysis
  // sees idle()'s guarded reads happen with mu_ held.
  while (!idle()) idle_cv_.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!wake_worker()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (idle()) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace xaon::util
