#include "xaon/util/arena.hpp"

#include <algorithm>
#include <cstring>

#include "xaon/util/assert.hpp"

namespace xaon::util {

namespace {

// Poisoning compiles away entirely off-ASan; callers stay branch-only.
inline void poison(const std::byte* p, std::size_t n) {
#if XAON_HAS_ASAN
  __asan_poison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

inline void unpoison(const std::byte* p, std::size_t n) {
#if XAON_HAS_ASAN
  __asan_unpoison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

}  // namespace

void Arena::add_chunk(std::size_t min_bytes) {
  const std::size_t size = std::max(chunk_bytes_, min_bytes);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  cursor_ = chunk.data.get();
  limit_ = cursor_ + size;
  bytes_reserved_ += size;
  // A poison-guarded arena keeps every byte it has not handed out
  // poisoned; allocate() unpoisons exactly the user region, so the
  // alignment pad and red-zone gap stay lethal to stray reads/writes.
  if (guard_ == GuardMode::kPoison) poison(cursor_, size);
  chunks_.push_back(std::move(chunk));
  active_ = chunks_.size() - 1;
}

void Arena::guard_gap(std::byte* from, std::byte* to) {
  if (to <= from) return;
  const std::size_t n = static_cast<std::size_t>(to - from);
  std::memset(from, std::to_integer<int>(kCanaryByte), n);
  canary_gaps_.emplace_back(from, static_cast<std::uint32_t>(n));
}

void Arena::check_canaries() const {
  for (const auto& [p, n] : canary_gaps_) {
    for (std::uint32_t i = 0; i < n; ++i) {
      XAON_CHECK_MSG(p[i] == kCanaryByte,
                     "arena canary smashed — out-of-bounds write between "
                     "allocations (see DESIGN.md §\"Arena lifetime "
                     "contract\")");
    }
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  XAON_DCHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  // Guarded modes append a red-zone gap after the user region so
  // adjacent allocations can never be overrun silently.
  const std::size_t tail = guard_ != GuardMode::kOff ? kRedZoneBytes : 0;
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  std::uintptr_t aligned = (addr + (align - 1)) & ~(align - 1);
  std::size_t needed = (aligned - addr) + bytes + tail;
  if (cursor_ == nullptr ||
      needed > static_cast<std::size_t>(limit_ - cursor_)) {
    // Advance through chunks retained by reset() before reserving more.
    while (active_ + 1 < chunks_.size()) {
      ++active_;
      cursor_ = chunks_[active_].data.get();
      limit_ = cursor_ + chunks_[active_].size;
      addr = reinterpret_cast<std::uintptr_t>(cursor_);
      aligned = (addr + (align - 1)) & ~(align - 1);
      needed = (aligned - addr) + bytes + tail;
      if (needed <= static_cast<std::size_t>(limit_ - cursor_)) break;
    }
    if (cursor_ == nullptr ||
        needed > static_cast<std::size_t>(limit_ - cursor_)) {
      add_chunk(bytes + align + tail);
      addr = reinterpret_cast<std::uintptr_t>(cursor_);
      aligned = (addr + (align - 1)) & ~(align - 1);
      needed = (aligned - addr) + bytes + tail;
    }
  }
  std::byte* const gap_start = cursor_;
  std::byte* const user = reinterpret_cast<std::byte*>(aligned);
  cursor_ += needed;
  bytes_allocated_ += bytes;
  if (guard_ == GuardMode::kPoison) {
    unpoison(user, bytes);
  } else if (guard_ == GuardMode::kCanary) {
    guard_gap(gap_start, user);   // alignment pad
    guard_gap(user + bytes, cursor_);  // trailing red zone
  }
  return user;
}

std::string_view Arena::intern(std::string_view s) {
  char* p = static_cast<char*>(allocate(s.size() + 1, 1));
  if (!s.empty()) std::memcpy(p, s.data(), s.size());
  p[s.size()] = '\0';
  return {p, s.size()};
}

std::size_t Arena::bytes_retained() const {
  if (chunks_.empty()) return 0;
  std::size_t free_bytes = static_cast<std::size_t>(limit_ - cursor_);
  for (std::size_t i = active_ + 1; i < chunks_.size(); ++i) {
    free_bytes += chunks_[i].size;
  }
  return free_bytes;
}

void Arena::reset() {
  // Verify the gaps BEFORE any chunk is released: an overflow between
  // allocations is reported at the boundary of the cycle that did it.
  if (guard_ == GuardMode::kCanary) {
    check_canaries();
    canary_gaps_.clear();  // capacity retained — steady state stays clean
  }
  if (chunks_.size() > 1) {
    if (shrink_on_reset_) {
      // Bounded-footprint mode: give the spill back, keep chunk 0 at its
      // original size. The next cycle may reserve again — that is the
      // explicit trade this knob makes.
      chunks_.resize(1);
      bytes_reserved_ = chunks_[0].size;
      cursor_ = chunks_[0].data.get();
      limit_ = cursor_ + chunks_[0].size;
    } else {
      // The last cycle spilled; fold the total into the preferred chunk
      // size so the next cycle fits in one chunk and reaches steady
      // state.
      chunk_bytes_ = std::max(chunk_bytes_, bytes_reserved_);
      chunks_.clear();
      bytes_reserved_ = 0;
      cursor_ = nullptr;
      limit_ = nullptr;
    }
  } else if (!chunks_.empty()) {
    cursor_ = chunks_[0].data.get();
    limit_ = cursor_ + chunks_[0].size;
  }
  active_ = 0;
  bytes_allocated_ = 0;
  // Everything the arena still holds is now logically dead until the
  // next allocate() — poison it wholesale so any pointer that escaped
  // the reset boundary dies on first use instead of reading stale bytes.
  if (guard_ == GuardMode::kPoison) {
    for (const Chunk& c : chunks_) poison(c.data.get(), c.size);
  }
}

void Arena::release() {
  if (guard_ == GuardMode::kCanary) {
    check_canaries();
    canary_gaps_.clear();
  }
  chunks_.clear();
  active_ = 0;
  cursor_ = nullptr;
  limit_ = nullptr;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace xaon::util
