#include "xaon/util/arena.hpp"

#include <algorithm>
#include <cstring>

#include "xaon/util/assert.hpp"

namespace xaon::util {

void Arena::add_chunk(std::size_t min_bytes) {
  const std::size_t size = std::max(chunk_bytes_, min_bytes);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  cursor_ = chunk.data.get();
  limit_ = cursor_ + size;
  bytes_reserved_ += size;
  chunks_.push_back(std::move(chunk));
  active_ = chunks_.size() - 1;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  XAON_DCHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  std::uintptr_t aligned = (addr + (align - 1)) & ~(align - 1);
  std::size_t needed = (aligned - addr) + bytes;
  if (cursor_ == nullptr ||
      needed > static_cast<std::size_t>(limit_ - cursor_)) {
    // Advance through chunks retained by reset() before reserving more.
    while (active_ + 1 < chunks_.size()) {
      ++active_;
      cursor_ = chunks_[active_].data.get();
      limit_ = cursor_ + chunks_[active_].size;
      addr = reinterpret_cast<std::uintptr_t>(cursor_);
      aligned = (addr + (align - 1)) & ~(align - 1);
      needed = (aligned - addr) + bytes;
      if (needed <= static_cast<std::size_t>(limit_ - cursor_)) break;
    }
    if (cursor_ == nullptr ||
        needed > static_cast<std::size_t>(limit_ - cursor_)) {
      add_chunk(bytes + align);
      addr = reinterpret_cast<std::uintptr_t>(cursor_);
      aligned = (addr + (align - 1)) & ~(align - 1);
      needed = (aligned - addr) + bytes;
    }
  }
  cursor_ += needed;
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

std::string_view Arena::intern(std::string_view s) {
  char* p = static_cast<char*>(allocate(s.size() + 1, 1));
  if (!s.empty()) std::memcpy(p, s.data(), s.size());
  p[s.size()] = '\0';
  return {p, s.size()};
}

void Arena::reset() {
  if (chunks_.size() > 1) {
    // The last cycle spilled; fold the total into the preferred chunk
    // size so the next cycle fits in one chunk and reaches steady state.
    chunk_bytes_ = std::max(chunk_bytes_, bytes_reserved_);
    chunks_.clear();
    bytes_reserved_ = 0;
    cursor_ = nullptr;
    limit_ = nullptr;
  } else if (!chunks_.empty()) {
    cursor_ = chunks_[0].data.get();
    limit_ = cursor_ + chunks_[0].size;
  }
  active_ = 0;
  bytes_allocated_ = 0;
}

void Arena::release() {
  chunks_.clear();
  active_ = 0;
  cursor_ = nullptr;
  limit_ = nullptr;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace xaon::util
