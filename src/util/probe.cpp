#include "xaon/util/probe.hpp"

#include <deque>
#include <string>
#include <unordered_map>

#include "xaon/util/annotations.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/sync.hpp"

namespace xaon::probe {

namespace detail {
thread_local Recorder* tl_recorder = nullptr;
}  // namespace detail

namespace {

struct SiteInfo {
  std::string name;
  SiteKind kind;
};

struct Registry {
  util::Mutex mu;
  std::unordered_map<std::string_view, std::uint32_t> by_name
      XAON_GUARDED_BY(mu);
  // deque: growth must not move stored strings — by_name keys view them.
  std::deque<SiteInfo> sites XAON_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked intentionally: process-global
  return *r;
}

}  // namespace

std::uint32_t register_site(std::string_view name, SiteKind kind) {
  Registry& reg = registry();
  util::MutexLock lock(reg.mu);
  if (auto it = reg.by_name.find(name); it != reg.by_name.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(reg.sites.size());
  reg.sites.push_back(SiteInfo{std::string(name), kind});
  // Key the map with a view of the stored string so lookups never dangle.
  reg.by_name.emplace(std::string_view(reg.sites.back().name), id);
  return id;
}

std::uint32_t site_count() {
  Registry& reg = registry();
  util::MutexLock lock(reg.mu);
  return static_cast<std::uint32_t>(reg.sites.size());
}

std::string_view site_name(std::uint32_t id) {
  Registry& reg = registry();
  util::MutexLock lock(reg.mu);
  XAON_CHECK(id < reg.sites.size());
  return reg.sites[id].name;
}

SiteKind site_kind(std::uint32_t id) {
  Registry& reg = registry();
  util::MutexLock lock(reg.mu);
  XAON_CHECK(id < reg.sites.size());
  return reg.sites[id].kind;
}

Recorder* set_recorder(Recorder* r) {
  Recorder* prev = detail::tl_recorder;
  detail::tl_recorder = r;
  return prev;
}

Recorder* recorder() { return detail::tl_recorder; }

}  // namespace xaon::probe
