#include "xaon/util/cache.hpp"

#include <cstdio>

namespace xaon::util {

void CacheStats::append_json(std::string& out) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"hits\": %llu, \"misses\": %llu, \"insertions\": %llu, "
                "\"evictions\": %llu, \"hit_rate\": %.4f}",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(insertions),
                static_cast<unsigned long long>(evictions), hit_rate());
  out += buf;
}

}  // namespace xaon::util
