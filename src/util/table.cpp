#include "xaon/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "xaon/util/assert.hpp"
#include "xaon/util/str.hpp"

namespace xaon::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    XAON_CHECK_MSG(row.size() == header_.size(),
                   "row width must match header width");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  // Column widths.
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::string out;
  out += "== " + title_ + " ==\n";
  auto rule = [&] {
    for (std::size_t w : widths) out += "+" + std::string(w + 2, '-');
    out += "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += "| " + cell + std::string(widths[i] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();

  if (tsv_ && !header_.empty()) {
    for (const auto& r : rows_) {
      for (std::size_t i = 1; i < r.size(); ++i) {
        out += title_ + "\t" + r[0] + "\t" + header_[i] + "\t" + r[i] + "\n";
      }
    }
  }
  return out;
}

void TextTable::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

void BarChart::set_series(std::vector<std::string> series) {
  series_ = std::move(series);
}

void BarChart::add_group(std::string label, std::vector<double> values) {
  XAON_CHECK_MSG(values.size() == series_.size(),
                 "group must have one value per series");
  groups_.push_back(Group{std::move(label), std::move(values)});
}

std::string BarChart::render() const {
  double vmax = 0.0;
  for (const auto& g : groups_) {
    for (double v : g.values) vmax = std::max(vmax, v);
  }
  if (vmax <= 0.0) vmax = 1.0;

  std::size_t label_w = 0;
  for (const auto& g : groups_) label_w = std::max(label_w, g.label.size());
  std::size_t series_w = 0;
  for (const auto& s : series_) series_w = std::max(series_w, s.size());

  std::string out;
  out += "== " + title_ + " ==\n";
  for (const auto& g : groups_) {
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const double v = g.values[i];
      const int len = static_cast<int>(
          std::lround(v / vmax * static_cast<double>(width_)));
      out += "  ";
      out += (i == 0 ? g.label + std::string(label_w - g.label.size(), ' ')
                     : std::string(label_w, ' '));
      out += " ";
      out += series_[i] + std::string(series_w - series_[i].size(), ' ');
      out += " |" + std::string(static_cast<std::size_t>(len), '#');
      out += format(" %.*f\n", precision_, v);
    }
    out += "\n";
  }
  return out;
}

void BarChart::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace xaon::util
