#include "xaon/util/str.hpp"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "xaon/util/scan.hpp"

namespace xaon::util {

namespace {
/// is_ascii_space's byte set (wider than XML whitespace: adds \f, \v).
constexpr scan::ByteClass kAsciiSpace = scan::ByteClass::of(" \t\r\n\f\v");
}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ascii_lower(c);
  return out;
}

std::string_view trim(std::string_view s) {
  const std::size_t b = scan::skip_while_class(s.data(), s.size(), kAsciiSpace);
  std::size_t e = s.size();
  while (e > b && is_ascii_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (;;) {
    const std::string_view rest = s.substr(start);
    const std::size_t hit = scan::find_byte(rest.data(), rest.size(), sep);
    out.push_back(rest.substr(0, hit));
    if (hit == rest.size()) break;
    start += hit + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = (s[0] == '-');
    i = 1;
    if (s.size() == 1) return std::nullopt;
  }
  std::uint64_t acc = 0;
  for (; i < s.size(); ++i) {
    if (!is_ascii_digit(s[i])) return std::nullopt;
    const auto d = static_cast<std::uint64_t>(s[i] - '0');
    if (acc > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
      return std::nullopt;
    }
    acc = acc * 10 + d;
  }
  const std::uint64_t limit =
      neg ? static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max()) +
                1
          : static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max());
  if (acc > limit) return std::nullopt;
  return neg ? -static_cast<std::int64_t>(acc - 1) - 1
             : static_cast<std::int64_t>(acc);
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t acc = 0;
  for (char c : s) {
    if (!is_ascii_digit(c)) return std::nullopt;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (acc > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
      return std::nullopt;
    }
    acc = acc * 10 + d;
  }
  return acc;
}

std::optional<double> parse_f64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  // strtod needs NUL termination; copy into a small buffer.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace xaon::util
