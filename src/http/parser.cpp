#include "xaon/http/parser.hpp"

#include "xaon/util/probe.hpp"
#include "xaon/util/scan.hpp"
#include "xaon/util/str.hpp"
#include "xaon/xml/chars.hpp"

namespace xaon::http {

namespace detail {

namespace {

namespace scan = xaon::util::scan;

const std::uint32_t kLineSite =
    probe::site("http.parse.line", probe::SiteKind::kLoop);
const std::uint32_t kStateSite =
    probe::site("http.parse.state", probe::SiteKind::kData);

constexpr std::size_t kMaxLineBytes = 64 * 1024;

bool parse_header_line(std::string_view line, HeaderMap* headers,
                       std::string* error) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    *error = "malformed header line";
    return false;
  }
  std::string_view name = line.substr(0, colon);
  // No whitespace allowed in field names (RFC 7230 request smuggling
  // defense).
  for (char c : name) {
    if (util::is_ascii_space(c)) {
      *error = "whitespace in header name";
      return false;
    }
  }
  std::string_view value = util::trim(line.substr(colon + 1));
  headers->add(name, value);
  return true;
}

}  // namespace

void MessageParser::reset_impl() {
  state_ = ParseState::kStartLine;
  error_code_ = ParseError::kNone;
  error_.clear();
  line_buf_.clear();
  body_remaining_ = 0;
  header_count_ = 0;
  header_bytes_ = 0;
  chunked_ = false;
  has_length_ = false;
  chunk_cr_seen_ = false;
}

std::size_t MessageParser::feed_impl(std::string_view data,
                                     HeaderMap* headers, std::string* body) {
  // Bulk line scanning runs only when no probe::Recorder is installed:
  // probe capture (Table 5/6 trace mode) keeps the byte-at-a-time loop
  // so the recorded http.parse.line branch shape is unchanged.
  const bool bulk = probe::recorder() == nullptr;
  std::size_t consumed = 0;
  while (consumed < data.size() && state_ != ParseState::kDone &&
         state_ != ParseState::kError) {
    probe::branch(kStateSite, state_ == ParseState::kBody);
    switch (state_) {
      case ParseState::kStartLine:
      case ParseState::kHeaders:
      case ParseState::kChunkSize:
      case ParseState::kChunkTrailer: {
        // Line-oriented states: accumulate until CRLF (LF tolerated).
        if (bulk) {
          // Grab everything up to the next '\n' in one scan. The append
          // is clamped to one byte over the line budget so an over-long
          // line fails at exactly the same consumed count as the
          // byte-at-a-time path.
          const char* base = data.data() + consumed;
          const std::size_t avail = data.size() - consumed;
          const std::size_t nl = scan::find_byte(base, avail, '\n');
          const std::size_t take =
              std::min(nl, kMaxLineBytes + 1 - line_buf_.size());
          line_buf_.append(base, take);
          consumed += take;
          if (line_buf_.size() > kMaxLineBytes) {
            fail(ParseError::kHeaderLineTooLong, "header line too long");
            return consumed;
          }
          if (nl == avail) break;  // no '\n' yet: wait for more input
          ++consumed;              // the '\n'
        } else {
          const char c = data[consumed];
          ++consumed;
          if (!probe::branch(kLineSite, c == '\n')) {
            line_buf_.push_back(c);
            if (line_buf_.size() > kMaxLineBytes) {
              fail(ParseError::kHeaderLineTooLong, "header line too long");
              return consumed;
            }
            break;
          }
        }
        std::string_view line = line_buf_;
        if (!line.empty() && line.back() == '\r') {
          line.remove_suffix(1);
        }
        probe::load(line.data(), static_cast<std::uint32_t>(line.size()));

        if (state_ == ParseState::kStartLine) {
          if (line.empty()) break;  // tolerate leading blank lines
          if (!parse_start_line(line)) {
            if (state_ != ParseState::kError) {
              fail(ParseError::kBadStartLine, "bad start line");
            }
            return consumed;
          }
          state_ = ParseState::kHeaders;
        } else if (state_ == ParseState::kHeaders) {
          if (!line.empty()) {
            if (++header_count_ > max_header_count_) {
              fail(ParseError::kTooManyHeaders, "too many headers");
              return consumed;
            }
            header_bytes_ += line.size();
            if (header_bytes_ > max_header_bytes_) {
              fail(ParseError::kHeadersTooLarge, "header section too large");
              return consumed;
            }
            std::string err;
            if (!parse_header_line(line, headers, &err)) {
              fail(ParseError::kBadHeader, std::move(err));
              return consumed;
            }
          } else {
            // End of headers: determine body framing.
            auto te = headers->get("Transfer-Encoding");
            if (te && util::contains(util::to_lower(std::string(*te)),  // xlint: allow(hot-string): rare Transfer-Encoding branch, not the common-case framing
                                     "chunked")) {
              // RFC 7230 §3.3.3: a message carrying both a chunked
              // Transfer-Encoding and a Content-Length is a
              // request-smuggling vector (two peers can frame the body
              // differently) — reject instead of letting one win.
              if (headers->has("Content-Length")) {
                fail(ParseError::kBadContentLength,
                     "Content-Length with chunked Transfer-Encoding");
                return consumed;
              }
              chunked_ = true;
              state_ = ParseState::kChunkSize;
            } else if (auto cl = headers->get("Content-Length")) {
              auto n = util::parse_u64(util::trim(*cl));
              if (!n) {
                fail(ParseError::kBadContentLength, "bad Content-Length");
                return consumed;
              }
              // Duplicate Content-Length headers must agree (RFC 7230
              // §3.3.3) — `get` above returns only the first, so a
              // second differing value would otherwise win at whichever
              // peer reads the other one. Entry walk, no allocation.
              for (const auto& e : headers->entries()) {
                if (!util::iequals(e.name, "Content-Length")) continue;
                auto m = util::parse_u64(util::trim(e.value));
                if (!m || *m != *n) {
                  fail(ParseError::kBadContentLength,
                       "conflicting Content-Length headers");
                  return consumed;
                }
              }
              if (*n > max_body_) {
                fail(ParseError::kBodyTooLarge, "body exceeds limit");
                return consumed;
              }
              body_remaining_ = static_cast<std::size_t>(*n);
              has_length_ = true;
              state_ = body_remaining_ > 0 ? ParseState::kBody
                                           : ParseState::kDone;
            } else {
              state_ = ParseState::kDone;  // no body
            }
          }
        } else if (state_ == ParseState::kChunkSize) {
          // Size line (hex), optional extensions after ';'.
          std::string_view size_str = line.substr(0, line.find(';'));
          std::size_t size = 0;
          bool any = false;
          for (char h : size_str) {
            if (!xml::is_hex_digit(h)) {
              if (any) break;
              fail(ParseError::kBadChunk, "bad chunk size");
              return consumed;
            }
            size = size * 16 + static_cast<std::size_t>(xml::hex_value(h));
            any = true;
            if (size > max_body_) {
              fail(ParseError::kBodyTooLarge, "chunk exceeds limit");
              return consumed;
            }
          }
          if (!any) {
            fail(ParseError::kBadChunk, "bad chunk size");
            return consumed;
          }
          if (size == 0) {
            state_ = ParseState::kChunkTrailer;
          } else {
            body_remaining_ = size;
            state_ = ParseState::kChunkData;
          }
        } else {  // kChunkTrailer
          if (line.empty()) {
            state_ = ParseState::kDone;
          } else {
            // Trailer values are ignored, but the lines are charged to
            // the same budgets as the header section — an endless
            // trailer stream is an endless header section and must hit
            // the same wall.
            if (++header_count_ > max_header_count_) {
              fail(ParseError::kTooManyHeaders, "too many trailer lines");
              return consumed;
            }
            header_bytes_ += line.size();
            if (header_bytes_ > max_header_bytes_) {
              fail(ParseError::kHeadersTooLarge, "trailer section too large");
              return consumed;
            }
          }
        }
        line_buf_.clear();
        break;
      }
      case ParseState::kBody: {
        const std::size_t take =
            std::min(body_remaining_, data.size() - consumed);
        body->append(data.substr(consumed, take));
        probe::load(data.data() + consumed, static_cast<std::uint32_t>(take));
        consumed += take;
        body_remaining_ -= take;
        if (body_remaining_ == 0) state_ = ParseState::kDone;
        break;
      }
      case ParseState::kChunkData: {
        if (body_remaining_ > 0) {
          const std::size_t take =
              std::min(body_remaining_, data.size() - consumed);
          if (body->size() + take > max_body_) {
            fail(ParseError::kBodyTooLarge, "body exceeds limit");
            return consumed;
          }
          body->append(data.substr(consumed, take));
          consumed += take;
          body_remaining_ -= take;
          break;
        }
        // The chunk payload must be terminated by an exact CRLF (RFC
        // 7230 §4.1). A tolerant scan-to-'\n' here would silently
        // swallow arbitrary garbage between payload and terminator
        // (`payloadXXXX\n`) — a framing desync a smuggler can exploit.
        const char c = data[consumed];
        ++consumed;
        if (!chunk_cr_seen_) {
          if (c != '\r') {
            fail(ParseError::kBadChunk, "bad chunk terminator");
            return consumed;
          }
          chunk_cr_seen_ = true;
          break;
        }
        if (c != '\n') {
          fail(ParseError::kBadChunk, "bad chunk terminator");
          return consumed;
        }
        chunk_cr_seen_ = false;
        state_ = ParseState::kChunkSize;
        break;
      }
      case ParseState::kDone:
      case ParseState::kError:
        break;
    }
  }
  return consumed;
}

}  // namespace detail

std::size_t RequestParser::feed(std::string_view data) {
  return feed_impl(data, &request_.headers, &request_.body);
}

bool RequestParser::parse_start_line(std::string_view line) {
  // "METHOD SP TARGET SP VERSION" — split in place (no vector).
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return fail(ParseError::kBadStartLine, "malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() ||
      version.find(' ') != std::string_view::npos) {
    return fail(ParseError::kBadStartLine, "malformed request line");
  }
  if (!util::starts_with(version, "HTTP/")) {
    return fail(ParseError::kBadStartLine, "bad HTTP version");
  }
  request_.method.assign(method);
  request_.target.assign(target);
  request_.version.assign(version);
  return true;
}

Request RequestParser::take_request() {
  Request out = std::move(request_);
  reset();
  return out;
}

void RequestParser::reset() {
  reset_impl();
  request_.reset();
  request_.method.clear();
}

std::size_t ResponseParser::feed(std::string_view data) {
  return feed_impl(data, &response_.headers, &response_.body);
}

bool ResponseParser::parse_start_line(std::string_view line) {
  // HTTP/1.1 200 OK
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return fail(ParseError::kBadStartLine, "malformed status line");
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view version = line.substr(0, sp1);
  const std::string_view code = sp2 == std::string_view::npos
                                    ? line.substr(sp1 + 1)
                                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (!util::starts_with(version, "HTTP/")) {
    return fail(ParseError::kBadStartLine, "bad HTTP version");
  }
  auto status = util::parse_u64(code);
  if (!status || *status < 100 || *status > 599) {
    return fail(ParseError::kBadStartLine, "bad status code");
  }
  response_.version = std::string(version);  // xlint: allow(hot-string): response parse is the client/test side, not the server hot path
  response_.status = static_cast<int>(*status);
  response_.reason = sp2 == std::string_view::npos
                         ? std::string()  // xlint: allow(hot-string): response parse is the client/test side, not the server hot path
                         : std::string(line.substr(sp2 + 1));  // xlint: allow(hot-string): response parse is the client/test side, not the server hot path
  return true;
}

Response ResponseParser::take_response() {
  Response out = std::move(response_);
  reset();
  return out;
}

void ResponseParser::reset() {
  reset_impl();
  response_.reset();
}

}  // namespace xaon::http
