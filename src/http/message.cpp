#include "xaon/http/message.hpp"

#include "xaon/util/probe.hpp"
#include "xaon/util/str.hpp"

namespace xaon::http {

namespace {

const std::uint32_t kHeaderSite =
    probe::site("http.header.lookup", probe::SiteKind::kLoop);

}  // namespace

void HeaderMap::add(std::string_view name, std::string_view value) {
  if (!pool_.empty()) {
    Entry e = std::move(pool_.back());
    pool_.pop_back();
    e.name.assign(name);
    e.value.assign(value);
    headers_.push_back(std::move(e));
  } else {
    headers_.push_back(Entry{std::string(name), std::string(value)});  // xlint: allow(hot-string): cold branch — entry pool empty only while the map grows
  }
}

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const Entry& e : headers_) {
    probe::load(e.name.data(), static_cast<std::uint32_t>(e.name.size()));
    if (probe::branch(kHeaderSite, util::iequals(e.name, name))) {
      return std::string_view(e.value);
    }
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(
    std::string_view name) const {
  std::vector<std::string_view> out;
  for (const Entry& e : headers_) {
    if (util::iequals(e.name, name)) out.emplace_back(e.value);
  }
  return out;
}

std::size_t HeaderMap::remove(std::string_view name) {
  std::size_t removed = 0;
  for (auto it = headers_.begin(); it != headers_.end();) {
    if (util::iequals(it->name, name)) {
      pool_.push_back(std::move(*it));
      it = headers_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void HeaderMap::clear() {
  for (Entry& e : headers_) pool_.push_back(std::move(e));
  headers_.clear();
}

std::optional<std::uint64_t> Request::content_length() const {
  auto v = headers.get("Content-Length");
  if (!v) return std::nullopt;
  return util::parse_u64(util::trim(*v));
}

void Request::reset() {
  method.assign("GET");
  target.assign("/");
  version.assign("HTTP/1.1");
  headers.clear();
  body.clear();
}

void Response::reset() {
  status = 200;
  reason.assign("OK");
  version.assign("HTTP/1.1");
  headers.clear();
  body.clear();
}

bool Request::wants_close() const {
  auto conn = headers.get("Connection");
  if (conn && util::iequals(util::trim(*conn), "close")) return true;
  if (version == "HTTP/1.0") {
    return !(conn && util::iequals(util::trim(*conn), "keep-alive"));
  }
  return false;
}

namespace {

void write_headers_and_body(const HeaderMap& headers,
                            const std::string& body, std::string* out) {
  bool wrote_length = false;
  for (const auto& e : headers.entries()) {
    if (util::iequals(e.name, "Content-Length")) {
      if (wrote_length) continue;
      out->append("Content-Length: ");
      out->append(std::to_string(body.size()));  // xlint: allow(hot-string): std::to_string of a small size fits SSO — no heap
      wrote_length = true;
    } else if (util::iequals(e.name, "Transfer-Encoding")) {
      continue;  // serialized messages always use Content-Length
    } else {
      out->append(e.name);
      out->append(": ");
      out->append(e.value);
    }
    out->append("\r\n");
  }
  if (!wrote_length && !body.empty()) {
    out->append("Content-Length: ");
    out->append(std::to_string(body.size()));  // xlint: allow(hot-string): std::to_string of a small size fits SSO — no heap
    out->append("\r\n");
  }
  out->append("\r\n");
  out->append(body);
}

}  // namespace

void write_request_to(const Request& request, std::string* out) {
  out->clear();
  out->reserve(request.body.size() + 256);
  *out += request.method;
  *out += ' ';
  *out += request.target;
  *out += ' ';
  *out += request.version;
  *out += "\r\n";
  write_headers_and_body(request.headers, request.body, out);
  probe::store(out->data(), static_cast<std::uint32_t>(out->size()));
}

std::string write_request(const Request& request) {
  std::string out;
  write_request_to(request, &out);
  return out;
}

void write_response_to(const Response& response, std::string* out) {
  out->clear();
  out->reserve(response.body.size() + 256);
  *out += response.version;
  *out += ' ';
  *out += std::to_string(response.status);  // xlint: allow(hot-string): std::to_string of a small size fits SSO — no heap
  *out += ' ';
  if (response.reason.empty()) {
    *out += reason_phrase(response.status);
  } else {
    *out += response.reason;
  }
  *out += "\r\n";
  write_headers_and_body(response.headers, response.body, out);
  probe::store(out->data(), static_cast<std::uint32_t>(out->size()));
}

std::string write_response(const Response& response) {
  std::string out;
  write_response_to(response, &out);
  return out;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 415: return "Unsupported Media Type";
    case 422: return "Unprocessable Entity";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace xaon::http
