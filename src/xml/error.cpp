#include "xaon/xml/error.hpp"

#include "xaon/util/str.hpp"

namespace xaon::xml {

std::string Error::to_string() const {
  if (empty()) return "ok";
  return util::format("%zu:%zu: %s", line, column, message.c_str());
}

}  // namespace xaon::xml
