#include "parser_core.hpp"

#include <algorithm>
#include <string>

#include "xaon/util/probe.hpp"
#include "xaon/util/scan.hpp"
#include "xaon/util/str.hpp"
#include "xaon/xml/chars.hpp"

namespace xaon::xml::detail {

namespace {

namespace probe = xaon::probe;
namespace scan = xaon::util::scan;

/// Attribute-value terminators: the closing quote, markup/reference
/// starters, and the whitespace bytes that normalize to ' ' (plain
/// spaces copy through unchanged, so they are not stops).
constexpr scan::ByteClass kAttrStopsDq = scan::ByteClass::of("\"<&\t\r\n");
constexpr scan::ByteClass kAttrStopsSq = scan::ByteClass::of("'<&\t\r\n");
/// DOCTYPE structural bytes: quoted-literal delimiters, the internal
/// subset brackets, and the closing '>'.
constexpr scan::ByteClass kDoctypeStops = scan::ByteClass::of("\"'[]>");

/// Probe sites for the tokenizer hot loops. Registered once per process;
/// ids are stable, so the simulated branch predictors see consistent PCs.
struct Sites {
  std::uint32_t content_scan = probe::site("xml.lex.content", probe::SiteKind::kLoop);
  std::uint32_t markup_dispatch = probe::site("xml.lex.dispatch", probe::SiteKind::kData);
  std::uint32_t name_scan = probe::site("xml.lex.name", probe::SiteKind::kLoop);
  std::uint32_t attr_more = probe::site("xml.lex.attr_more", probe::SiteKind::kData);
  std::uint32_t entity = probe::site("xml.lex.entity", probe::SiteKind::kData);
  std::uint32_t ns_lookup = probe::site("xml.ns.lookup", probe::SiteKind::kLoop);
  std::uint32_t close_match = probe::site("xml.lex.close_match", probe::SiteKind::kData);
};

const Sites& sites() {
  static const Sites s;
  return s;
}

class XAON_ARENA_TIED Core {
 public:
  Core(std::string_view input, const ParseOptions& options,
       util::Arena& arena, EventSink& sink, ParserScratch& scratch)
      : in_(input),
        opt_(options),
        arena_(arena),
        sink_(sink),
        ns_(scratch.ns),
        raw_attrs_(scratch.raw_attrs),
        attr_buf_(scratch.attr_events),
        scratch_(scratch.value_buf),
        text_(scratch.text_buf) {
    ns_.clear();
    raw_attrs_.clear();
    attr_buf_.clear();
    scratch_.clear();
    text_.clear();
  }

  CoreResult run();

 private:
  // --- cursor primitives -------------------------------------------------
  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  char peek_at(std::size_t k) const {
    return pos_ + k < in_.size() ? in_[pos_ + k] : '\0';
  }
  void advance() { ++pos_; }
  bool consume(char c) {
    if (!eof() && peek() == c) {
      advance();
      return true;
    }
    return false;
  }
  bool consume_str(std::string_view s) {
    if (in_.substr(pos_).substr(0, s.size()) == s) {
      for (std::size_t i = 0; i < s.size(); ++i) advance();
      return true;
    }
    return false;
  }
  void skip_space() {
    if (bulk_) {
      pos_ += scan::skip_xml_whitespace(in_.data() + pos_, in_.size() - pos_);
      return;
    }
    while (!eof() && is_space(peek())) advance();
  }

  [[nodiscard]] bool fail(std::string message,
                          ErrorCode code = ErrorCode::kSyntax) {
    if (result_.error.empty()) {
      result_.error.offset = pos_;
      // Line/column are derived here, on the cold path: the cursor no
      // longer tracks newlines per byte (that bookkeeping was a branch
      // per input byte in the hot loops the scan kernels replace).
      std::size_t line = 1;
      std::size_t line_start = doc_start_;
      for (std::size_t i = doc_start_; i < pos_; ++i) {
        if (in_[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
      }
      result_.error.line = line;
      result_.error.column = pos_ - line_start + 1;
      result_.error.code = code;
      result_.error.message = std::move(message);
    }
    return false;
  }

  // --- scanning ----------------------------------------------------------
  bool scan_name(std::string_view* out);
  bool scan_attr_value(std::string_view* out);
  bool scan_reference(std::string_view* out);
  bool parse_misc(bool prolog);
  bool parse_doctype();
  bool parse_comment(std::string_view* out);
  bool parse_pi(std::string_view* target, std::string_view* data);
  bool parse_cdata(std::string_view* out);
  bool parse_element();
  bool parse_content(const ResolvedName& parent);
  bool parse_xml_decl();

  // --- namespaces ----------------------------------------------------------
  std::string_view lookup_ns(std::string_view prefix, bool for_attr) const;
  bool resolve(std::string_view qname, bool is_attr, ResolvedName* out);

  std::string_view intern(std::string_view s) {
    std::string_view v = arena_.intern(s);
    probe::store(v.data(), static_cast<std::uint32_t>(v.size()));
    return v;
  }

  std::string_view in_;
  ParseOptions opt_;
  util::Arena& arena_;
  EventSink& sink_;

  std::size_t pos_ = 0;
  std::size_t doc_start_ = 0;  ///< first byte after the BOM, if any
  std::size_t depth_ = 0;
  std::size_t reference_count_ = 0;  ///< entity/char refs this document
  bool root_seen_ = false;
  bool aborted_ = false;
  /// Bulk scanning runs only when no probe::Recorder is installed on
  /// this thread: probe capture (the Table 5/6 uarch trace mode) keeps
  /// the original probe::branch-annotated per-byte loops so the
  /// recorded branch shapes are unchanged.
  const bool bulk_ = probe::recorder() == nullptr;
  /// Scratch for one UTF-8-encoded numeric character reference; the
  /// view scan_reference returns for the numeric case points here.
  char ref_buf_[4] = {0, 0, 0, 0};

  // Reusable buffers owned by the caller's ParserScratch. raw_attrs_ and
  // attr_buf_ are only live between a start tag's '<' and its
  // start_element event, text_ only between two markup boundaries — all
  // three are empty whenever parse_element/parse_content recurse, so one
  // shared buffer per role serves every nesting level.
  std::vector<NsBinding>& ns_;
  std::vector<RawAttr>& raw_attrs_;
  std::vector<AttrEvent>& attr_buf_;
  std::string& scratch_;
  std::string& text_;

  CoreResult result_;
};

bool Core::scan_name(std::string_view* out) {
  const std::size_t start = pos_;
  if (eof() || !is_name_start(peek())) return fail("expected name");
  advance();
  if (bulk_) {
    pos_ += scan::match_name_run(in_.data() + pos_, in_.size() - pos_);
  } else {
    while (probe::branch(sites().name_scan, !eof() && is_name_char(peek()))) {
      advance();
    }
  }
  std::string_view raw = in_.substr(start, pos_ - start);
  probe::load(raw.data(), static_cast<std::uint32_t>(raw.size()));
  *out = raw;
  return true;
}

bool Core::scan_reference(std::string_view* out) {
  // Caller consumed '&'. The returned view is either a static literal
  // (the five predefined entities) or ref_buf_ (numeric references) —
  // no heap traffic on either path; it stays valid until the next
  // scan_reference call, so callers append it immediately.
  if (++reference_count_ > opt_.max_entity_expansions) {
    return fail("too many entity references", ErrorCode::kEntityLimit);
  }
  const std::size_t start = pos_;
  if (consume('#')) {
    std::uint32_t cp = 0;
    bool hex = consume('x');
    bool any = false;
    while (!eof()) {
      const char c = peek();
      int v;
      if (hex) {
        if (!is_hex_digit(c)) break;
        v = hex_value(c);
        cp = cp * 16 + static_cast<std::uint32_t>(v);
      } else {
        if (!(c >= '0' && c <= '9')) break;
        cp = cp * 10 + static_cast<std::uint32_t>(c - '0');
      }
      if (cp > 0x10FFFF) return fail("character reference out of range");
      any = true;
      advance();
    }
    if (!any || !consume(';')) return fail("malformed character reference");
    const int n = utf8_encode(cp, ref_buf_);
    if (n == 0) return fail("invalid character reference");
    *out = std::string_view(ref_buf_, static_cast<std::size_t>(n));
    probe::alu(4);
    return true;
  }
  std::string_view name;
  if (!scan_name(&name)) return fail("malformed entity reference");
  if (!consume(';')) return fail("entity reference missing ';'");
  const std::string_view text = predefined_entity_text(name);
  if (probe::branch(sites().entity, text.empty())) {
    pos_ = start;  // report at the reference
    return fail("unknown entity '&" + std::string(name) + ";'");  // xlint: allow(hot-string): cold error path — message built only on parse failure
  }
  *out = text;
  return true;
}

bool Core::scan_attr_value(std::string_view* out) {
  char quote = 0;
  if (consume('"')) {
    quote = '"';
  } else if (consume('\'')) {
    quote = '\'';
  } else {
    return fail("attribute value must be quoted");
  }
  scratch_.clear();
  const scan::ByteClass& stops = quote == '"' ? kAttrStopsDq : kAttrStopsSq;
  const std::size_t run_start = pos_;
  while (!eof()) {
    if (bulk_) {
      // Everything up to the next stop byte copies through verbatim
      // (plain spaces included — they normalize to themselves).
      const std::size_t run =
          scan::find_any_of(in_.data() + pos_, in_.size() - pos_, stops);
      scratch_.append(in_.data() + pos_, run);
      pos_ += run;
      if (eof()) break;
    }
    const char c = peek();
    if (c == quote) {
      probe::load(in_.data() + run_start,
                  static_cast<std::uint32_t>(pos_ - run_start));
      advance();
      *out = intern(scratch_);
      return true;
    }
    if (c == '<') return fail("'<' in attribute value");
    if (c == '&') {
      advance();
      std::string_view ref;
      if (!scan_reference(&ref)) return false;
      scratch_.append(ref);
      continue;
    }
    // Attribute-value normalization: whitespace -> space.
    scratch_.push_back(is_space(c) ? ' ' : c);
    advance();
  }
  return fail("unterminated attribute value");
}

bool Core::parse_comment(std::string_view* out) {
  // Caller consumed "<!--".
  const std::size_t start = pos_;
  while (!eof()) {
    if (bulk_ && peek() != '-') {
      pos_ += scan::find_byte(in_.data() + pos_, in_.size() - pos_, '-');
      if (eof()) break;
    }
    if (peek() == '-' && peek_at(1) == '-') {
      if (peek_at(2) != '>') return fail("'--' not allowed in comment");
      std::string_view body = in_.substr(start, pos_ - start);
      advance();
      advance();
      advance();
      *out = body;
      return true;
    }
    advance();
  }
  return fail("unterminated comment");
}

bool Core::parse_pi(std::string_view* target, std::string_view* data) {
  // Caller consumed "<?".
  std::string_view name;
  if (!scan_name(&name)) return false;
  if (util::iequals(name, "xml")) return fail("reserved PI target 'xml'");
  skip_space();
  const std::size_t start = pos_;
  while (!eof()) {
    if (bulk_ && peek() != '?') {
      pos_ += scan::find_byte(in_.data() + pos_, in_.size() - pos_, '?');
      if (eof()) break;
    }
    if (peek() == '?' && peek_at(1) == '>') {
      *target = name;
      *data = in_.substr(start, pos_ - start);
      advance();
      advance();
      return true;
    }
    advance();
  }
  return fail("unterminated processing instruction");
}

bool Core::parse_cdata(std::string_view* out) {
  // Caller consumed "<![CDATA[".
  const std::size_t start = pos_;
  while (!eof()) {
    if (bulk_ && peek() != ']') {
      pos_ += scan::find_byte(in_.data() + pos_, in_.size() - pos_, ']');
      if (eof()) break;
    }
    if (peek() == ']' && peek_at(1) == ']' && peek_at(2) == '>') {
      std::string_view body = in_.substr(start, pos_ - start);
      probe::load(body.data(), static_cast<std::uint32_t>(body.size()));
      advance();
      advance();
      advance();
      *out = body;
      return true;
    }
    advance();
  }
  return fail("unterminated CDATA section");
}

bool Core::parse_doctype() {
  // Caller consumed "<!DOCTYPE". Skip to matching '>', honoring an
  // internal subset in [...] and quoted strings. Entity declarations are
  // not processed (documented limitation).
  int bracket = 0;
  while (!eof()) {
    if (bulk_) {
      pos_ +=
          scan::find_any_of(in_.data() + pos_, in_.size() - pos_, kDoctypeStops);
      if (eof()) break;
    }
    const char c = peek();
    if (c == '"' || c == '\'') {
      const char q = c;
      advance();
      if (bulk_) {
        pos_ += scan::find_byte(in_.data() + pos_, in_.size() - pos_, q);
      } else {
        while (!eof() && peek() != q) advance();
      }
      if (eof()) return fail("unterminated literal in DOCTYPE");
      advance();
      continue;
    }
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (c == '>' && bracket == 0) {
      advance();
      return true;
    }
    advance();
  }
  return fail("unterminated DOCTYPE");
}

bool Core::parse_xml_decl() {
  // Caller consumed "<?xml". Accept version/encoding/standalone loosely.
  while (!eof()) {
    if (bulk_ && peek() != '?') {
      pos_ += scan::find_byte(in_.data() + pos_, in_.size() - pos_, '?');
      if (eof()) break;
    }
    if (peek() == '?' && peek_at(1) == '>') {
      advance();
      advance();
      return true;
    }
    advance();
  }
  return fail("unterminated XML declaration");
}

std::string_view Core::lookup_ns(std::string_view prefix,
                                 bool for_attr) const {
  if (prefix == "xml") return "http://www.w3.org/XML/1998/namespace";
  if (prefix == "xmlns") return "http://www.w3.org/2000/xmlns/";
  if (for_attr && prefix.empty()) return {};  // unprefixed attrs: no ns
  for (auto it = ns_.rbegin(); it != ns_.rend(); ++it) {
    probe::branch(sites().ns_lookup, it->prefix == prefix);
    if (it->prefix == prefix) return it->uri;
  }
  return {};
}

bool Core::resolve(std::string_view qname, bool is_attr, ResolvedName* out) {
  out->qname = qname;
  const std::size_t colon = qname.find(':');
  if (colon == std::string_view::npos) {
    out->prefix = {};
    out->local = qname;
  } else {
    out->prefix = qname.substr(0, colon);
    out->local = qname.substr(colon + 1);
    if (out->prefix.empty() || out->local.empty() ||
        out->local.find(':') != std::string_view::npos) {
      return fail("malformed QName '" + std::string(qname) + "'");  // xlint: allow(hot-string): cold error path — message built only on parse failure
    }
  }
  if (!opt_.namespace_aware) {
    out->ns_uri = {};
    return true;
  }
  out->ns_uri = lookup_ns(out->prefix, is_attr);
  if (!out->prefix.empty() && out->ns_uri.empty() && out->prefix != "xmlns") {
    return fail("unbound namespace prefix '" + std::string(out->prefix) +  // xlint: allow(hot-string): cold error path — message built only on parse failure
                "'");
  }
  return true;
}

bool Core::parse_element() {
  // Caller consumed '<'; current char starts the name. The ceiling keeps
  // the recursion shallow no matter how permissive max_depth is set.
  if (depth_ >= std::min(opt_.max_depth, ParseOptions::kDepthCeiling)) {
    return fail("maximum element depth exceeded", ErrorCode::kDepthLimit);
  }
  std::string_view raw_name;
  if (!scan_name(&raw_name)) return false;
  const std::string_view qname = intern(raw_name);

  // Collect attributes (raw); namespace decls take effect on this element.
  const std::size_t ns_mark = ns_.size();
  raw_attrs_.clear();
  bool self_closing = false;
  for (;;) {
    const bool had_space = !eof() && is_space(peek());
    skip_space();
    if (eof()) return fail("unterminated start tag");
    const char c = peek();
    if (c == '>') {
      advance();
      break;
    }
    if (c == '/') {
      advance();
      if (!consume('>')) return fail("expected '>' after '/'");
      self_closing = true;
      break;
    }
    if (probe::branch(sites().attr_more, !had_space)) {
      return fail("expected whitespace before attribute");
    }
    if (raw_attrs_.size() >= opt_.max_attributes) {
      return fail("too many attributes", ErrorCode::kAttrLimit);
    }
    std::string_view attr_name;
    if (!scan_name(&attr_name)) return false;
    skip_space();
    if (!consume('=')) return fail("expected '=' after attribute name");
    skip_space();
    std::string_view value;
    if (!scan_attr_value(&value)) return false;
    const std::string_view name_i = intern(attr_name);
    for (const RawAttr& a : raw_attrs_) {
      if (a.qname == name_i) {
        return fail("duplicate attribute '" + std::string(name_i) + "'");  // xlint: allow(hot-string): cold error path — message built only on parse failure
      }
    }
    // Namespace declarations bind on this element; they are also kept as
    // ordinary attributes so serialization round-trips.
    if (opt_.namespace_aware) {
      if (name_i == "xmlns") {
        ns_.push_back(NsBinding{{}, value, depth_});
      } else if (util::starts_with(name_i, "xmlns:")) {
        const std::string_view p = name_i.substr(6);
        if (p.empty()) return fail("empty xmlns prefix");
        if (value.empty()) {
          return fail("empty namespace URI for prefix '" + std::string(p) +  // xlint: allow(hot-string): cold error path — message built only on parse failure
                      "'");
        }
        ns_.push_back(NsBinding{p, value, depth_});
      }
    }
    raw_attrs_.push_back(RawAttr{name_i, value});
  }

  ResolvedName name;
  if (!resolve(qname, /*is_attr=*/false, &name)) return false;

  attr_buf_.clear();
  for (const RawAttr& a : raw_attrs_) {
    AttrEvent ev;
    if (!resolve(a.qname, /*is_attr=*/true, &ev.name)) return false;
    ev.value = a.value;
    attr_buf_.push_back(ev);
  }
  // Duplicate check under namespace rules ({uri,local} must be unique).
  if (opt_.namespace_aware) {
    for (std::size_t i = 0; i < attr_buf_.size(); ++i) {
      for (std::size_t j = i + 1; j < attr_buf_.size(); ++j) {
        if (attr_buf_[i].name.local == attr_buf_[j].name.local &&
            attr_buf_[i].name.ns_uri == attr_buf_[j].name.ns_uri) {
          return fail("duplicate attribute '{" +
                      std::string(attr_buf_[i].name.ns_uri) + "}" +  // xlint: allow(hot-string): cold error path — message built only on parse failure
                      std::string(attr_buf_[i].name.local) + "'");  // xlint: allow(hot-string): cold error path — message built only on parse failure
        }
      }
    }
  }

  if (!sink_.start_element(name, attr_buf_.data(), attr_buf_.size())) {
    aborted_ = true;
    return false;
  }
  probe::alu(12);

  if (!self_closing) {
    ++depth_;
    if (!parse_content(name)) return false;
    --depth_;
  }
  if (!sink_.end_element(name)) {
    aborted_ = true;
    return false;
  }
  ns_.resize(ns_mark);
  return true;
}

bool Core::parse_content(const ResolvedName& parent) {
  scratch_.clear();
  // text_ is shared across nesting levels: it is always flushed (and
  // therefore empty) before parse_element recurses into a child.
  std::string& pending_text = text_;
  bool pending_ws_only = true;

  auto flush_text = [&]() -> bool {
    if (pending_text.empty()) return true;
    if (pending_ws_only && !opt_.keep_whitespace_text) {
      pending_text.clear();
      pending_ws_only = true;
      return true;
    }
    const std::string_view t = intern(pending_text);
    pending_text.clear();
    const bool ws = pending_ws_only;
    pending_ws_only = true;
    if (!sink_.text(t, /*is_cdata=*/false, ws)) {
      aborted_ = true;
      return false;
    }
    return true;
  };

  while (!eof()) {
    if (bulk_) {
      // Bulk-copy the content-text run up to the next '<' or '&'. The
      // whitespace-only flag is re-derived from the run itself: the run
      // is all-whitespace iff skip_xml_whitespace consumes it whole.
      const char* base = in_.data() + pos_;
      const std::size_t run = scan::find_markup_or_amp(base, in_.size() - pos_);
      if (run != 0) {
        if (pending_ws_only && scan::skip_xml_whitespace(base, run) != run) {
          pending_ws_only = false;
        }
        pending_text.append(base, run);
        pos_ += run;
        if (eof()) break;
      }
    }
    const char c = peek();
    if (probe::branch(sites().content_scan, c != '<' && c != '&')) {
      pending_ws_only = pending_ws_only && is_space(c);
      pending_text.push_back(c);
      advance();
      continue;
    }
    if (c == '&') {
      advance();
      std::string_view ref;
      if (!scan_reference(&ref)) return false;
      pending_text.append(ref);
      // References never count as ignorable whitespace.
      pending_ws_only = false;
      continue;
    }
    // Markup.
    probe::branch(sites().markup_dispatch, true);
    advance();  // '<'
    if (eof()) return fail("unexpected end of input after '<'");
    if (peek() == '/') {
      advance();
      std::string_view close_name;
      if (!scan_name(&close_name)) return false;
      skip_space();
      if (!consume('>')) return fail("expected '>' in end tag");
      if (probe::branch(sites().close_match, close_name != parent.qname)) {
        return fail("mismatched end tag '</" + std::string(close_name) +  // xlint: allow(hot-string): cold error path — message built only on parse failure
                    ">' (expected '</" + std::string(parent.qname) + ">')");  // xlint: allow(hot-string): cold error path — message built only on parse failure
      }
      return flush_text();
    }
    if (peek() == '!') {
      advance();
      if (consume_str("--")) {
        std::string_view body;
        if (!parse_comment(&body)) return false;
        if (opt_.keep_comments) {
          if (!flush_text()) return false;
          if (!sink_.comment(intern(body))) {
            aborted_ = true;
            return false;
          }
        }
        continue;
      }
      if (consume_str("[CDATA[")) {
        std::string_view body;
        if (!parse_cdata(&body)) return false;
        if (!flush_text()) return false;
        if (!sink_.text(intern(body), /*is_cdata=*/true,
                        /*ws_only=*/false)) {
          aborted_ = true;
          return false;
        }
        continue;
      }
      return fail("unexpected markup in content");
    }
    if (peek() == '?') {
      advance();
      std::string_view target, data;
      if (!parse_pi(&target, &data)) return false;
      if (opt_.keep_pis) {
        if (!flush_text()) return false;
        if (!sink_.pi(intern(target), intern(data))) {
          aborted_ = true;
          return false;
        }
      }
      continue;
    }
    // Child element.
    if (!flush_text()) return false;
    if (!parse_element()) return false;
  }
  return fail("unexpected end of input inside element '" +
              std::string(parent.qname) + "'");  // xlint: allow(hot-string): cold error path — message built only on parse failure
}

bool Core::parse_misc(bool prolog) {
  // Whitespace / comments / PIs allowed outside the root element.
  for (;;) {
    skip_space();
    if (eof()) return true;
    if (peek() != '<') return fail("text outside the root element");
    if (peek_at(1) == '!') {
      if (in_.substr(pos_).substr(0, 4) == "<!--") {
        pos_ += 0;
        advance();
        advance();
        advance();
        advance();
        std::string_view body;
        if (!parse_comment(&body)) return false;
        if (opt_.keep_comments && !sink_.comment(intern(body))) {
          aborted_ = true;
          return false;
        }
        continue;
      }
      if (prolog && consume_str("<!DOCTYPE")) {
        if (!parse_doctype()) return false;
        continue;
      }
      return fail("unexpected markup outside root element");
    }
    if (peek_at(1) == '?') {
      advance();
      advance();
      std::string_view target, data;
      if (!parse_pi(&target, &data)) return false;
      if (opt_.keep_pis && !sink_.pi(intern(target), intern(data))) {
        aborted_ = true;
        return false;
      }
      continue;
    }
    return true;  // start of an element
  }
}

CoreResult Core::run() {
  // Optional BOM.
  if (in_.substr(0, 3) == "\xEF\xBB\xBF") {
    pos_ = 3;
    doc_start_ = 3;
  }
  // Optional XML declaration (must be first).
  if (in_.substr(pos_).substr(0, 5) == "<?xml" &&
      (pos_ + 5 >= in_.size() || is_space(in_[pos_ + 5]) ||
       in_[pos_ + 5] == '?')) {
    for (int i = 0; i < 5; ++i) advance();
    if (!parse_xml_decl()) goto done;
  }
  if (!parse_misc(/*prolog=*/true)) goto done;
  if (eof()) {
    (void)fail("no root element");
    goto done;
  }
  if (!consume('<')) {
    (void)fail("expected '<'");
    goto done;
  }
  root_seen_ = true;
  if (!parse_element()) goto done;
  if (!parse_misc(/*prolog=*/false)) goto done;
  if (!eof()) {
    (void)fail("more than one root element");
    goto done;
  }
  result_.ok = true;

done:
  if (aborted_) {
    result_.ok = true;
    result_.aborted = true;
    result_.error = {};
  }
  return result_;
}

}  // namespace

CoreResult run_parse(std::string_view input, const ParseOptions& options,
                     util::Arena& arena, EventSink& sink,
                     ParserScratch* scratch) {
  if (scratch != nullptr) {
    Core core(input, options, arena, sink, *scratch);
    return core.run();
  }
  ParserScratch local;
  Core core(input, options, arena, sink, local);
  return core.run();
}

}  // namespace xaon::xml::detail
