#include "xaon/xml/writer.hpp"

#include "xaon/util/assert.hpp"

namespace xaon::xml {

std::string escape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '"': out += "&quot;"; break;
      case '\n': out += "&#10;"; break;
      case '\t': out += "&#9;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void write_node(const Node* n, const WriteOptions& opt, int depth,
                std::string* out) {
  auto indent = [&](int d) {
    if (opt.pretty) out->append(static_cast<std::size_t>(d) * 2, ' ');
  };
  switch (n->type) {
    case NodeType::kDocument:
      for (const Node* c = n->first_child; c != nullptr;
           c = c->next_sibling) {
        write_node(c, opt, depth, out);
      }
      break;
    case NodeType::kElement: {
      indent(depth);
      out->push_back('<');
      out->append(n->qname);
      for (const Attr* a = n->first_attr; a != nullptr; a = a->next) {
        out->push_back(' ');
        out->append(a->qname);
        out->append("=\"");
        out->append(escape_attr(a->value));
        out->push_back('"');
      }
      if (n->first_child == nullptr && opt.self_close_empty) {
        out->append("/>");
        if (opt.pretty) out->push_back('\n');
        break;
      }
      out->push_back('>');
      const bool text_only =
          n->child_count > 0 && n->first_child_element() == nullptr;
      if (opt.pretty && !text_only) out->push_back('\n');
      for (const Node* c = n->first_child; c != nullptr;
           c = c->next_sibling) {
        write_node(c, opt, text_only ? 0 : depth + 1, out);
      }
      if (opt.pretty && !text_only) indent(depth);
      out->append("</");
      out->append(n->qname);
      out->push_back('>');
      if (opt.pretty) out->push_back('\n');
      break;
    }
    case NodeType::kText:
      if (opt.pretty && n->parent != nullptr &&
          n->parent->first_child_element() != nullptr) {
        break;  // drop mixed-content whitespace when pretty-printing
      }
      out->append(escape_text(n->text));
      break;
    case NodeType::kCData:
      out->append("<![CDATA[");
      out->append(n->text);
      out->append("]]>");
      break;
    case NodeType::kComment:
      indent(depth);
      out->append("<!--");
      out->append(n->text);
      out->append("-->");
      if (opt.pretty) out->push_back('\n');
      break;
    case NodeType::kProcessingInstruction:
      indent(depth);
      out->append("<?");
      out->append(n->qname);
      if (!n->text.empty()) {
        out->push_back(' ');
        out->append(n->text);
      }
      out->append("?>");
      if (opt.pretty) out->push_back('\n');
      break;
  }
}

}  // namespace

std::string write(const Node* node, const WriteOptions& options) {
  XAON_CHECK(node != nullptr);
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    out += options.pretty ? "\n" : "";
  }
  write_node(node, options, 0, &out);
  return out;
}

}  // namespace xaon::xml
