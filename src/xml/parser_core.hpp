#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "xaon/util/arena.hpp"
#include "xaon/xml/error.hpp"
#include "xaon/xml/parser.hpp"

/// \file parser_core.hpp  (internal)
/// The single tokenizer/well-formedness core shared by the DOM parser
/// (`parse`) and the streaming parser (`parse_sax`). Both install an
/// EventSink; decoded strings are interned into the caller's arena and
/// stay valid for the arena's lifetime.

namespace xaon::xml::detail {

struct XAON_ARENA_TIED ResolvedName {
  std::string_view qname;
  std::string_view prefix;
  std::string_view local;
  std::string_view ns_uri;
};

struct XAON_ARENA_TIED AttrEvent {
  ResolvedName name;
  std::string_view value;
};

/// Sink return value false aborts the parse without error.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual bool start_element(const ResolvedName& name,
                             const AttrEvent* attrs, std::size_t n) = 0;
  virtual bool end_element(const ResolvedName& name) = 0;
  virtual bool text(std::string_view data, bool is_cdata,
                    bool ws_only) = 0;
  virtual bool comment(std::string_view data) = 0;
  virtual bool pi(std::string_view target, std::string_view data) = 0;
};

struct CoreResult {
  Error error;
  bool ok = false;
  bool aborted = false;
};

/// Raw (pre-namespace-resolution) attribute as collected from a start
/// tag.
struct XAON_ARENA_TIED RawAttr {
  std::string_view qname;
  std::string_view value;
};

struct XAON_ARENA_TIED NsBinding {
  std::string_view prefix;
  std::string_view uri;
  std::size_t depth;
};

/// Reusable tokenizer buffers. A fresh parse uses whatever capacity the
/// previous parse grew, so a parser that keeps one of these across
/// messages performs zero heap allocations at steady state.
struct ParserScratch {
  std::vector<NsBinding> ns;
  std::vector<RawAttr> raw_attrs;
  std::vector<AttrEvent> attr_events;
  std::string value_buf;  ///< attribute-value normalization
  std::string text_buf;   ///< pending character data
};

/// Runs a full document parse of `input`, interning strings into `arena`
/// and delivering events to `sink`. `scratch` (optional) supplies
/// reusable tokenizer buffers; pass the same instance across parses to
/// avoid per-message allocation.
CoreResult run_parse(std::string_view input, const ParseOptions& options,
                     util::Arena& arena, EventSink& sink,
                     ParserScratch* scratch = nullptr);

}  // namespace xaon::xml::detail
