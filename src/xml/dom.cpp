#include "xaon/xml/dom.hpp"

#include "xaon/util/probe.hpp"

namespace xaon::xml {

namespace {

const std::uint32_t kChildScanSite =
    probe::site("xml.dom.child_scan", probe::SiteKind::kLoop);

}  // namespace

const Node* Node::child_element(std::string_view local_name) const {
  for (const Node* c = first_child; c != nullptr; c = c->next_sibling) {
    probe::load(c, sizeof(Node));
    if (probe::branch(kChildScanSite,
                      c->is_element() && c->local == local_name)) {
      return c;
    }
  }
  return nullptr;
}

const Node* Node::first_child_element() const {
  for (const Node* c = first_child; c != nullptr; c = c->next_sibling) {
    probe::load(c, sizeof(Node));
    if (c->is_element()) return c;
  }
  return nullptr;
}

const Node* Node::next_sibling_element() const {
  for (const Node* s = next_sibling; s != nullptr; s = s->next_sibling) {
    probe::load(s, sizeof(Node));
    if (s->is_element()) return s;
  }
  return nullptr;
}

const Attr* Node::attr(std::string_view attr_qname) const {
  for (const Attr* a = first_attr; a != nullptr; a = a->next) {
    probe::load(a, sizeof(Attr));
    if (a->qname == attr_qname) return a;
  }
  return nullptr;
}

namespace {

void append_text(const Node* n, std::string* out) {
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_text()) {
      out->append(c->text);
    } else if (c->is_element()) {
      append_text(c, out);
    }
  }
}

}  // namespace

std::string Node::text_content() const {
  if (is_text()) return std::string(text);  // xlint: allow(hot-string): heap-returning convenience API by contract
  std::string out;
  append_text(this, &out);
  return out;
}

void Node::text_content_to(std::string& out) const {
  if (is_text()) {
    out.append(text);
    return;
  }
  append_text(this, &out);
}

Node* Document::root() {
  if (doc_ == nullptr) return nullptr;
  for (Node* c = doc_->first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_element()) return c;
  }
  return nullptr;
}

const Node* Document::root() const {
  return const_cast<Document*>(this)->root();
}

std::size_t count_elements(const Node* n) {
  if (n == nullptr) return 0;
  std::size_t count = n->is_element() ? 1 : 0;
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    count += count_elements(c);
  }
  return count;
}

}  // namespace xaon::xml
