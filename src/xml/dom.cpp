#include "xaon/xml/dom.hpp"

#include "xaon/util/cache.hpp"
#include "xaon/util/probe.hpp"

namespace xaon::xml {

namespace {

const std::uint32_t kChildScanSite =
    probe::site("xml.dom.child_scan", probe::SiteKind::kLoop);

}  // namespace

const Node* Node::child_element(std::string_view local_name) const {
  for (const Node* c = first_child; c != nullptr; c = c->next_sibling) {
    probe::load(c, sizeof(Node));
    if (probe::branch(kChildScanSite,
                      c->is_element() && c->local == local_name)) {
      return c;
    }
  }
  return nullptr;
}

const Node* Node::first_child_element() const {
  for (const Node* c = first_child; c != nullptr; c = c->next_sibling) {
    probe::load(c, sizeof(Node));
    if (c->is_element()) return c;
  }
  return nullptr;
}

const Node* Node::next_sibling_element() const {
  for (const Node* s = next_sibling; s != nullptr; s = s->next_sibling) {
    probe::load(s, sizeof(Node));
    if (s->is_element()) return s;
  }
  return nullptr;
}

const Attr* Node::attr(std::string_view attr_qname) const {
  for (const Attr* a = first_attr; a != nullptr; a = a->next) {
    probe::load(a, sizeof(Attr));
    if (a->qname == attr_qname) return a;
  }
  return nullptr;
}

namespace {

void append_text(const Node* n, std::string* out) {
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_text()) {
      out->append(c->text);
    } else if (c->is_element()) {
      append_text(c, out);
    }
  }
}

}  // namespace

std::string Node::text_content() const {
  if (is_text()) return std::string(text);  // xlint: allow(hot-string): heap-returning convenience API by contract
  std::string out;
  append_text(this, &out);
  return out;
}

void Node::text_content_to(std::string& out) const {
  if (is_text()) {
    out.append(text);
    return;
  }
  append_text(this, &out);
}

Node* Document::root() {
  if (doc_ == nullptr) return nullptr;
  for (Node* c = doc_->first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_element()) return c;
  }
  return nullptr;
}

const Node* Document::root() const {
  return const_cast<Document*>(this)->root();
}

std::size_t count_elements(const Node* n) {
  if (n == nullptr) return 0;
  std::size_t count = n->is_element() ? 1 : 0;
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    count += count_elements(c);
  }
  return count;
}

namespace {

// Skeleton stream markers. Separators (0x1F) frame variable-length name
// fields so adjacent names cannot run together; the close marker (0x0F)
// frames nesting so <a><b/></a><c/> and <a/><b/><c/> digest differently.
enum : std::uint8_t {
  kFpElement = 0x01,
  kFpAttr = 0x02,
  kFpAttrsEnd = 0x03,
  kFpText = 0x04,     // text and CDATA: presence only, value excluded
  kFpComment = 0x05,  // presence only, body excluded
  kFpPi = 0x06,       // target included, data excluded
  kFpDocument = 0x07,
  kFpSep = 0x1F,
  kFpClose = 0x0F,
};

inline void fp_open(util::Fingerprint64& fp, const Node* n) {
  switch (n->type) {
    case NodeType::kElement:
      fp.mix_byte(kFpElement);
      fp.mix(n->local);
      fp.mix_byte(kFpSep);
      fp.mix(n->ns_uri);
      fp.mix_byte(kFpSep);
      for (const Attr* a = n->first_attr; a != nullptr; a = a->next) {
        fp.mix_byte(kFpAttr);
        fp.mix(a->local);
        fp.mix_byte(kFpSep);
        fp.mix(a->ns_uri);
        fp.mix_byte(kFpSep);
      }
      fp.mix_byte(kFpAttrsEnd);
      break;
    case NodeType::kText:
    case NodeType::kCData:
      fp.mix_byte(kFpText);
      break;
    case NodeType::kComment:
      fp.mix_byte(kFpComment);
      break;
    case NodeType::kProcessingInstruction:
      fp.mix_byte(kFpPi);
      fp.mix(n->qname);  // the PI target
      fp.mix_byte(kFpSep);
      break;
    case NodeType::kDocument:
      fp.mix_byte(kFpDocument);
      break;
  }
}

}  // namespace

std::uint64_t skeleton_fingerprint(const Node* root) {
  util::Fingerprint64 fp;
  if (root == nullptr) return fp.value();
  const Node* n = root;
  for (;;) {
    fp_open(fp, n);
    if (n->first_child != nullptr) {
      n = n->first_child;
      continue;
    }
    fp.mix_byte(kFpClose);
    while (n != root && n->next_sibling == nullptr) {
      n = n->parent;
      fp.mix_byte(kFpClose);
    }
    if (n == root) break;
    n = n->next_sibling;
  }
  return fp.value();
}

}  // namespace xaon::xml
