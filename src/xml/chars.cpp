#include "xaon/xml/chars.hpp"

namespace xaon::xml {

int utf8_encode(std::uint32_t cp, char* buf) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return 0;
  // XML 1.0 restricts chars; reject NUL and most C0 controls.
  if (cp < 0x20 && cp != 0x09 && cp != 0x0A && cp != 0x0D) return 0;
  if (cp < 0x80) {
    buf[0] = static_cast<char>(cp);
    return 1;
  }
  if (cp < 0x800) {
    buf[0] = static_cast<char>(0xC0 | (cp >> 6));
    buf[1] = static_cast<char>(0x80 | (cp & 0x3F));
    return 2;
  }
  if (cp < 0x10000) {
    buf[0] = static_cast<char>(0xE0 | (cp >> 12));
    buf[1] = static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    buf[2] = static_cast<char>(0x80 | (cp & 0x3F));
    return 3;
  }
  buf[0] = static_cast<char>(0xF0 | (cp >> 18));
  buf[1] = static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
  buf[2] = static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
  buf[3] = static_cast<char>(0x80 | (cp & 0x3F));
  return 4;
}

char predefined_entity(std::string_view name) {
  if (name == "lt") return '<';
  if (name == "gt") return '>';
  if (name == "amp") return '&';
  if (name == "apos") return '\'';
  if (name == "quot") return '"';
  return '\0';
}

std::string_view predefined_entity_text(std::string_view name) {
  if (name == "lt") return "<";
  if (name == "gt") return ">";
  if (name == "amp") return "&";
  if (name == "apos") return "'";
  if (name == "quot") return "\"";
  return {};
}

}  // namespace xaon::xml
