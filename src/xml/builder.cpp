#include "xaon/xml/builder.hpp"

#include <vector>

#include "xaon/util/assert.hpp"
#include "xaon/util/str.hpp"

namespace xaon::xml {

namespace {

/// Splits a qname into (prefix, local) views of the same storage.
void split_qname(std::string_view qname, std::string_view* prefix,
                 std::string_view* local) {
  const std::size_t colon = qname.find(':');
  if (colon == std::string_view::npos) {
    *prefix = {};
    *local = qname;
  } else {
    *prefix = qname.substr(0, colon);
    *local = qname.substr(colon + 1);
  }
}

}  // namespace

Builder::Builder(std::string_view root_qname) {
  doc_.doc_ = doc_.arena().make<Node>();
  doc_.doc_->type = NodeType::kDocument;
  doc_.node_count_ = 1;
  cursor_ = doc_.doc_;
  child(root_qname);
}

Node* Builder::new_node(NodeType type) {
  XAON_CHECK_MSG(cursor_ != nullptr, "builder already finalized");
  Node* node = doc_.arena().make<Node>();
  node->type = type;
  node->parent = cursor_;
  node->depth = cursor_->depth + 1;
  node->doc_order = static_cast<std::uint32_t>(doc_.node_count_);
  if (cursor_->last_child == nullptr) {
    cursor_->first_child = node;
  } else {
    cursor_->last_child->next_sibling = node;
    node->prev_sibling = cursor_->last_child;
  }
  cursor_->last_child = node;
  ++cursor_->child_count;
  ++doc_.node_count_;
  return node;
}

Builder& Builder::child(std::string_view qname) {
  XAON_CHECK_MSG(!qname.empty(), "element name must be non-empty");
  Node* node = new_node(NodeType::kElement);
  node->qname = doc_.arena().intern(qname);
  split_qname(node->qname, &node->prefix, &node->local);
  // Resolve the namespace from bindings on ancestors (xmlns attrs
  // recorded by namespace_binding()).
  const std::string decl = node->prefix.empty()
                               ? std::string("xmlns")
                               : "xmlns:" + std::string(node->prefix);
  for (const Node* n = node; n != nullptr; n = n->parent) {
    if (const Attr* a = n->attr(decl)) {
      node->ns_uri = a->value;
      break;
    }
  }
  cursor_ = node;
  return *this;
}

Builder& Builder::up() {
  XAON_CHECK_MSG(cursor_ != nullptr, "builder already finalized");
  XAON_CHECK_MSG(cursor_->parent != nullptr &&
                     cursor_->parent->type != NodeType::kDocument,
                 "up() past the root element");
  cursor_ = cursor_->parent;
  return *this;
}

Builder& Builder::attribute(std::string_view name, std::string_view value) {
  XAON_CHECK_MSG(cursor_ != nullptr, "builder already finalized");
  XAON_CHECK_MSG(cursor_->is_element(), "attributes only on elements");
  XAON_CHECK_MSG(cursor_->attr(name) == nullptr, "duplicate attribute");
  Attr* attr = doc_.arena().make<Attr>();
  attr->qname = doc_.arena().intern(name);
  split_qname(attr->qname, &attr->prefix, &attr->local);
  attr->value = doc_.arena().intern(value);
  // Append preserving declaration order.
  Attr** tail = &cursor_->first_attr;
  while (*tail != nullptr) tail = &(*tail)->next;
  *tail = attr;
  return *this;
}

Builder& Builder::text(std::string_view data) {
  Node* node = new_node(NodeType::kText);
  node->text = doc_.arena().intern(data);
  cursor_ = node->parent;
  return *this;
}

Builder& Builder::cdata(std::string_view data) {
  Node* node = new_node(NodeType::kCData);
  node->text = doc_.arena().intern(data);
  cursor_ = node->parent;
  return *this;
}

Builder& Builder::comment(std::string_view data) {
  Node* node = new_node(NodeType::kComment);
  node->text = doc_.arena().intern(data);
  cursor_ = node->parent;
  return *this;
}

Builder& Builder::namespace_binding(std::string_view prefix,
                                    std::string_view uri) {
  const std::string name =
      prefix.empty() ? std::string("xmlns") : "xmlns:" + std::string(prefix);
  attribute(name, uri);
  // Re-resolve the cursor element itself if the binding applies to it.
  std::string_view cursor_prefix = cursor_->prefix;
  if (cursor_prefix == prefix) {
    Node* mutable_cursor = cursor_;
    mutable_cursor->ns_uri = doc_.arena().intern(uri);
  }
  return *this;
}

Document Builder::take() {
  XAON_CHECK_MSG(cursor_ != nullptr, "builder already finalized");
  cursor_ = nullptr;
  return std::move(doc_);
}

}  // namespace xaon::xml
