#include "xaon/xml/parser.hpp"

#include "parser_core.hpp"
#include "xaon/util/probe.hpp"

namespace xaon::xml {

/// Builds the arena DOM from parser-core events.
class XAON_ARENA_TIED DomBuilder final : public detail::EventSink {
 public:
  explicit DomBuilder(Document& doc) : doc_(doc) {
    doc_.doc_ = doc_.arena().make<Node>();
    doc_.doc_->type = NodeType::kDocument;
    doc_.node_count_ = 1;
    current_ = doc_.doc_;
  }

  bool start_element(const detail::ResolvedName& name,
                     const detail::AttrEvent* attrs, std::size_t n) override {
    Node* node = new_node(NodeType::kElement);
    node->qname = name.qname;
    node->prefix = name.prefix;
    node->local = name.local;
    node->ns_uri = name.ns_uri;
    Attr** tail = &node->first_attr;
    for (std::size_t i = 0; i < n; ++i) {
      Attr* a = doc_.arena().make<Attr>();
      probe::store(a, sizeof(Attr));
      a->qname = attrs[i].name.qname;
      a->prefix = attrs[i].name.prefix;
      a->local = attrs[i].name.local;
      a->ns_uri = attrs[i].name.ns_uri;
      a->value = attrs[i].value;
      *tail = a;
      tail = &a->next;
    }
    current_ = node;
    return true;
  }

  bool end_element(const detail::ResolvedName&) override {
    current_ = current_->parent;
    return true;
  }

  bool text(std::string_view data, bool is_cdata, bool) override {
    Node* node = new_node(is_cdata ? NodeType::kCData : NodeType::kText);
    node->text = data;
    current_ = node->parent;  // text nodes are leaves
    return true;
  }

  bool comment(std::string_view data) override {
    Node* node = new_node(NodeType::kComment);
    node->text = data;
    current_ = node->parent;
    return true;
  }

  bool pi(std::string_view target, std::string_view data) override {
    Node* node = new_node(NodeType::kProcessingInstruction);
    node->qname = target;
    node->text = data;
    current_ = node->parent;
    return true;
  }

 private:
  Node* new_node(NodeType type) {
    Node* node = doc_.arena().make<Node>();
    probe::store(node, sizeof(Node));
    node->type = type;
    node->parent = current_;
    node->depth = current_->depth + 1;
    node->doc_order = static_cast<std::uint32_t>(doc_.node_count_);
    if (current_->last_child == nullptr) {
      current_->first_child = node;
    } else {
      current_->last_child->next_sibling = node;
      node->prev_sibling = current_->last_child;
    }
    current_->last_child = node;
    ++current_->child_count;
    ++doc_.node_count_;
    return node;
  }

  Document& doc_;
  Node* current_ = nullptr;
};

namespace {

ParseResult parse_into(ParseResult&& result, std::string_view input,
                       const ParseOptions& options,
                       detail::ParserScratch* scratch) {
  DomBuilder builder(result.document);
  const detail::CoreResult core = detail::run_parse(
      input, options, result.document.arena(), builder, scratch);
  result.ok = core.ok && !core.aborted;  // DOM builder never aborts
  result.error = core.error;
  // On failure, drop the partial DOM. For an external arena the caller
  // reclaims the storage with Arena::reset(); for an owned arena
  // replacing the Document frees it here.
  if (!result.ok) {
    result.document = result.document.uses_external_arena()
                          ? Document(result.document.arena())
                          : Document();
  }
  return std::move(result);
}

}  // namespace

ParseResult parse(std::string_view input, const ParseOptions& options) {
  return parse_into(ParseResult{}, input, options, nullptr);
}

ParseResult parse(std::string_view input, util::Arena& arena,
                  const ParseOptions& options) {
  ParseResult result;
  result.document = Document(arena);
  return parse_into(std::move(result), input, options, nullptr);
}

DomParser::DomParser() : scratch_(new detail::ParserScratch()) {}  // xlint: allow(hot-new): one-time scratch allocation at parser construction
DomParser::~DomParser() = default;
DomParser::DomParser(DomParser&&) noexcept = default;
DomParser& DomParser::operator=(DomParser&&) noexcept = default;

ParseResult DomParser::parse(std::string_view input, util::Arena& arena,
                             const ParseOptions& options) {
  ParseResult result;
  result.document = Document(arena);
  return parse_into(std::move(result), input, options, scratch_.get());
}

}  // namespace xaon::xml
