#include "xaon/xml/sax.hpp"

#include <vector>

#include "parser_core.hpp"

namespace xaon::xml {

namespace {

/// Adapts the parser core's sink interface to the public SaxHandler.
class SaxAdapter final : public detail::EventSink {
 public:
  explicit SaxAdapter(SaxHandler& handler) : handler_(handler) {}

  bool start_element(const detail::ResolvedName& name,
                     const detail::AttrEvent* attrs, std::size_t n) override {
    attr_buf_.clear();
    attr_buf_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      attr_buf_.push_back(SaxAttr{attrs[i].name.qname, attrs[i].name.prefix,
                                  attrs[i].name.local, attrs[i].name.ns_uri,
                                  attrs[i].value});
    }
    return handler_.on_start_element(name.qname, name.local, name.ns_uri,
                                     attr_buf_.data(), attr_buf_.size());
  }

  bool end_element(const detail::ResolvedName& name) override {
    return handler_.on_end_element(name.qname, name.local, name.ns_uri);
  }

  bool text(std::string_view data, bool is_cdata, bool) override {
    return handler_.on_text(data, is_cdata);
  }

  bool comment(std::string_view data) override {
    return handler_.on_comment(data);
  }

  bool pi(std::string_view target, std::string_view data) override {
    return handler_.on_processing_instruction(target, data);
  }

 private:
  SaxHandler& handler_;
  std::vector<SaxAttr> attr_buf_;
};

}  // namespace

SaxResult parse_sax(std::string_view input, SaxHandler& handler,
                    const ParseOptions& options) {
  util::Arena arena(16 * 1024);
  SaxAdapter adapter(handler);
  const detail::CoreResult core =
      detail::run_parse(input, options, arena, adapter);
  SaxResult result;
  result.ok = core.ok;
  result.aborted = core.aborted;
  result.error = core.error;
  return result;
}

}  // namespace xaon::xml
