#include "xaon/uarch/prefetch.hpp"

#include <cstdlib>

namespace xaon::uarch {

StreamPrefetcher::StreamPrefetcher(const PrefetchConfig& config)
    : config_(config) {
  streams_.resize(config.streams);
}

void StreamPrefetcher::observe(std::uint64_t line,
                               std::vector<std::uint64_t>* out) {
  if (!config_.enabled) return;
  ++tick_;

  // Find a stream whose extrapolation matches this line (within a small
  // window for next-line streams).
  Stream* victim = &streams_[0];
  for (Stream& s : streams_) {
    if (!s.valid) {
      victim = &s;
      continue;
    }
    const std::int64_t delta =
        static_cast<std::int64_t>(line) -
        static_cast<std::int64_t>(s.last_line);
    if (delta != 0 && std::llabs(delta) <= 4 &&
        (s.stride == 0 || delta == s.stride)) {
      // Stream hit: train or prefetch.
      s.stride = delta;
      s.last_line = line;
      s.lru = tick_;
      if (s.confidence < config_.train_hits) {
        ++s.confidence;
        if (s.confidence == config_.train_hits) ++stats_.trained;
        return;
      }
      for (std::uint32_t d = 1; d <= config_.degree; ++d) {
        out->push_back(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(line) + s.stride * d));
        ++stats_.issued;
      }
      return;
    }
    if (victim->valid && s.lru < victim->lru) victim = &s;
  }
  // No stream matched: allocate.
  victim->valid = true;
  victim->last_line = line;
  victim->stride = 0;
  victim->confidence = 0;
  victim->lru = tick_;
}

}  // namespace xaon::uarch
