#include "xaon/uarch/system.hpp"

#include <algorithm>

#include "xaon/util/assert.hpp"

namespace xaon::uarch {

struct System::Core {
  Core(const CoreArch& arch)
      : l1i(arch.l1i), l1d(arch.l1d), predictor(arch.predictor),
        prefetcher(arch.prefetch) {}
  Cache l1i;
  Cache l1d;
  BranchPredictor predictor;
  StreamPrefetcher prefetcher;
  double issue_free_ns = 0;  ///< issue slots, shared by SMT threads
  double port_free_ns = 0;   ///< cache/L2 port, shared by SMT threads
  int chip = 0;
};

struct System::Chip {
  explicit Chip(const CacheConfig& l2_config) : l2(l2_config) {}
  Cache l2;
};

struct System::ThreadState {
  const Trace* trace = nullptr;
  std::size_t next = 0;
  double time_ns = 0;
  Counters counters;
  int core = 0;
  int chip = 0;
  int smt_slot = 0;

  bool active() const { return trace != nullptr && next < trace->size(); }
};

System::System(const PlatformConfig& config) : config_(config) {
  XAON_CHECK(config.chips >= 1 && config.cores_per_chip >= 1);
  for (int ch = 0; ch < config.chips; ++ch) {
    chips_.push_back(std::make_unique<Chip>(config.l2));
    for (int co = 0; co < config.cores_per_chip; ++co) {
      auto core = std::make_unique<Core>(config.arch);
      core->chip = ch;
      cores_.push_back(std::move(core));
    }
  }
}

System::~System() = default;

void System::reset() {
  const PlatformConfig config = config_;
  cores_.clear();
  chips_.clear();
  directory_.clear();
  bus_free_ns_ = 0;
  for (int ch = 0; ch < config.chips; ++ch) {
    chips_.push_back(std::make_unique<Chip>(config.l2));
    for (int co = 0; co < config.cores_per_chip; ++co) {
      auto core = std::make_unique<Core>(config.arch);
      core->chip = ch;
      cores_.push_back(std::move(core));
    }
  }
}

double System::bus_acquire(double now_ns, Counters& counters) {
  const double wait = std::max(0.0, bus_free_ns_ - now_ns);
  bus_free_ns_ = std::max(bus_free_ns_, now_ns) + config_.bus_occupancy_ns();
  ++counters.bus_transactions;
  return wait;
}

double System::coherence(ThreadState& thread, std::uint64_t line,
                         bool is_write, double now_ns) {
  DirEntry& entry = directory_[line];
  const std::uint32_t core_bit = 1u << thread.core;
  const std::uint32_t chip_bit = 1u << thread.chip;
  double extra_ns = 0;

  // Ownership transfer: another core last wrote this line; reading or
  // re-writing it costs a modified-intervention (cache-to-cache through
  // the shared L2 within a package, over the FSB between packages).
  if (entry.dirty_core >= 0 && entry.dirty_core != thread.core) {
    Core& owner = *cores_[static_cast<std::size_t>(entry.dirty_core)];
    const bool other_chip = owner.chip != thread.chip;
    if (other_chip) {
      extra_ns += config_.cross_chip_snoop_ns;
      extra_ns += bus_acquire(now_ns, thread.counters);
    } else {
      extra_ns += config_.same_chip_snoop_ns;
    }
    owner.l1d.invalidate(line * config_.arch.l1d.line_bytes);
    // Ownership moves to the reader/writer (read-for-ownership keeps
    // the model simple and errs toward the paper's observed costs).
    entry.dirty_core = thread.core;
  } else if (is_write) {
    entry.dirty_core = thread.core;
  }

  if (is_write) {
    // Invalidate every other core's L1 copy...
    std::uint32_t others = entry.core_mask & ~core_bit;
    for (int c = 0; others != 0; ++c, others >>= 1) {
      if ((others & 1u) == 0) continue;
      Core& victim = *cores_[static_cast<std::size_t>(c)];
      if (victim.l1d.invalidate(line * config_.arch.l1d.line_bytes)) {
        // dirty elsewhere: modeled as intervention above
      }
      ++thread.counters.coherence_invalidations;
      if (victim.chip != thread.chip) {
        // Cross-package invalidation goes over the FSB.
        bus_free_ns_ =
            std::max(bus_free_ns_, now_ns) + config_.bus_occupancy_ns();
        ++thread.counters.bus_transactions;
      }
    }
    // ...and other chips' L2 copies.
    std::uint32_t other_chips = entry.chip_mask & ~chip_bit;
    for (int ch = 0; other_chips != 0; ++ch, other_chips >>= 1) {
      if ((other_chips & 1u) == 0) continue;
      chips_[static_cast<std::size_t>(ch)]->l2.invalidate(
          line * config_.l2.line_bytes);
    }
    entry.core_mask = core_bit;
    entry.chip_mask = chip_bit;
  } else {
    entry.core_mask |= core_bit;
    entry.chip_mask |= chip_bit;
  }
  return extra_ns;
}

System::MemCost System::memory_access(ThreadState& thread, Core& core,
                                      Chip& chip, std::uint64_t addr,
                                      bool is_write, bool is_ifetch,
                                      double now_ns) {
  const CoreArch& arch = config_.arch;
  const double cyc_ns = 1.0 / arch.freq_ghz;
  Counters& c = thread.counters;
  MemCost cost;

  Cache& l1 = is_ifetch ? core.l1i : core.l1d;
  if (is_ifetch) {
    ++c.l1i_accesses;
  } else {
    ++c.l1d_accesses;
  }
  const AccessResult r1 = l1.access(addr, is_write && !is_ifetch);
  const std::uint64_t line = addr / config_.l2.line_bytes;

  double stall_ns = 0;
  if (!r1.hit) {
    if (is_ifetch) {
      ++c.l1i_misses;
    } else {
      ++c.l1d_misses;
    }
    // L1 writeback of the victim goes to L2 (no bus unless L2 evicts).
    if (r1.writeback) {
      chip.l2.fill(r1.victim_line * config_.arch.l1d.line_bytes);
    }

    ++c.l2_accesses;
    const AccessResult r2 = chip.l2.access(addr, is_write);
    // The L2 access occupies the core's cache port (a bandwidth
    // resource the SMT siblings share); the remaining hit latency is a
    // private, overlappable stall.
    cost.port_ns += arch.l2_port_cycles * cyc_ns;
    stall_ns +=
        std::max(0.0, arch.l2_latency_cycles - arch.l2_port_cycles) * cyc_ns;
    // The prefetcher trains on the L2-side *load* stream (L1 load
    // misses): like the real hardware it does not chase store streams,
    // so the receive-copy path of a network workload still exposes its
    // misses.
    if (!is_ifetch && !is_write) {
      prefetch_buf_.clear();
      core.prefetcher.observe(line, &prefetch_buf_);
      for (std::uint64_t pf_line : prefetch_buf_) {
        const AccessResult pf = chip.l2.fill(pf_line * config_.l2.line_bytes);
        if (!pf.hit) {
          // A prefetch fill consumes a bus transaction but does not
          // stall the thread.
          bus_free_ns_ =
              std::max(bus_free_ns_, now_ns) + config_.bus_occupancy_ns();
          ++c.bus_transactions;
          ++c.prefetch_fills;
          if (pf.writeback) {
            bus_free_ns_ =
                std::max(bus_free_ns_, now_ns) + config_.bus_occupancy_ns();
            ++c.bus_transactions;
          }
        }
      }
    }
    if (!r2.hit) {
      ++c.l2_misses;
      // Line fill from memory over the FSB.
      const double bus_wait = bus_acquire(now_ns, c);
      c.bus_wait_cycles +=
          static_cast<std::uint64_t>(bus_wait * arch.freq_ghz);
      stall_ns += bus_wait + arch.memory_latency_ns;
      if (r2.writeback) {
        // Dirty L2 eviction: another transaction, not on the critical
        // path.
        bus_free_ns_ =
            std::max(bus_free_ns_, now_ns) + config_.bus_occupancy_ns();
        ++c.bus_transactions;
      }
    }
  }

  // Coherence (data only; shared code never invalidates).
  if (!is_ifetch) {
    stall_ns += coherence(thread, line, is_write, now_ns);
  }

  const double exposure = is_ifetch  ? arch.ifetch_stall_exposure
                          : is_write ? arch.store_stall_exposure
                                     : arch.load_stall_exposure;
  cost.stall_ns = stall_ns * exposure;
  return cost;
}

RunResult System::run(const std::vector<const Trace*>& traces) {
  const CoreArch& arch = config_.arch;
  const double cyc_ns = 1.0 / arch.freq_ghz;
  const int n_threads = config_.hardware_threads();
  XAON_CHECK_MSG(static_cast<int>(traces.size()) <= n_threads,
                 "more traces than hardware threads");

  // Map hardware threads onto cores: SMT slots share a core.
  std::vector<ThreadState> threads(static_cast<std::size_t>(n_threads));
  {
    int t = 0;
    const int per_core = config_.smt ? 2 : 1;
    for (std::size_t co = 0; co < cores_.size(); ++co) {
      for (int s = 0; s < per_core; ++s, ++t) {
        threads[static_cast<std::size_t>(t)].core = static_cast<int>(co);
        threads[static_cast<std::size_t>(t)].chip = cores_[co]->chip;
        threads[static_cast<std::size_t>(t)].smt_slot = s;
      }
    }
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    threads[i].trace = traces[i];
  }
  for (auto& core : cores_) {
    core->issue_free_ns = 0;
    core->port_free_ns = 0;
  }
  // Simulated time is relative to the start of each run; only cache,
  // predictor and directory state persists across runs.
  bus_free_ns_ = 0;

  // Deterministic interleaving: always advance the thread with the
  // smallest local clock.
  for (;;) {
    ThreadState* next_thread = nullptr;
    for (ThreadState& t : threads) {
      if (!t.active()) continue;
      if (next_thread == nullptr || t.time_ns < next_thread->time_ns) {
        next_thread = &t;
      }
    }
    if (next_thread == nullptr) break;

    ThreadState& thread = *next_thread;
    Core& core = *cores_[static_cast<std::size_t>(thread.core)];
    Chip& chip = *chips_[static_cast<std::size_t>(thread.chip)];
    const Op& op = (*thread.trace)[thread.next++];
    Counters& c = thread.counters;

    // Issue: occupies the core's (shared) issue pipeline.
    const double start = std::max(thread.time_ns, core.issue_free_ns);
    const double issue_ns = arch.issue_cycles_per_op * cyc_ns;
    core.issue_free_ns = start + issue_ns;
    double t = start + issue_ns;

    // Charges a memory access: port occupancy serializes on the core's
    // shared cache port, private stall adds to the thread only.
    auto charge = [&](std::uint64_t addr, bool is_write, bool is_ifetch) {
      const MemCost cost =
          memory_access(thread, core, chip, addr, is_write, is_ifetch, t);
      if (cost.port_ns > 0) {
        const double port_start = std::max(t, core.port_free_ns);
        core.port_free_ns = port_start + cost.port_ns;
        t = port_start + cost.port_ns;
      }
      t += cost.stall_ns;
    };

    // Instruction fetch.
    charge(op.pc, /*is_write=*/false, /*is_ifetch=*/true);

    switch (op.kind) {
      case OpKind::kAlu:
        break;
      case OpKind::kLoad:
        charge(op.addr, false, false);
        break;
      case OpKind::kStore:
        charge(op.addr, true, false);
        break;
      case OpKind::kBranch: {
        ++c.branch_retired;  // scaled by expansion at the end
        const bool miss = core.predictor.predict_and_update(
            static_cast<std::uint32_t>(thread.smt_slot), op.pc, op.taken);
        if (miss) {
          ++c.branch_mispredicted;
          t += arch.mispredict_penalty * cyc_ns;
        }
        break;
      }
    }
    thread.time_ns = t;
    ++c.ops;
  }

  // Finalize counters.
  RunResult result;
  for (const ThreadState& t : threads) {
    result.wall_ns = std::max(result.wall_ns, t.time_ns);
  }
  result.per_thread.resize(threads.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    Counters c = threads[i].counters;
    c.busy_cycles =
        static_cast<std::uint64_t>(threads[i].time_ns * arch.freq_ghz);
    // Every hardware thread's cycle counter runs for the whole wall
    // time (VTune samples system-wide; an idle second CPU still burns
    // clockticks — the paper leans on this for its netperf CPI).
    c.clockticks =
        static_cast<std::uint64_t>(result.wall_ns * arch.freq_ghz);
    c.inst_retired = static_cast<std::uint64_t>(
        static_cast<double>(c.ops) * arch.uop_expansion);
    c.branch_retired = static_cast<std::uint64_t>(
        static_cast<double>(c.branch_retired) * 1.0);
    result.per_thread[i] = c;
    result.total += c;
  }
  return result;
}

}  // namespace xaon::uarch
