#include "xaon/uarch/counters.hpp"

#include "xaon/util/str.hpp"

namespace xaon::uarch {

Counters& Counters::operator+=(const Counters& other) {
  clockticks += other.clockticks;
  busy_cycles += other.busy_cycles;
  inst_retired += other.inst_retired;
  ops += other.ops;
  branch_retired += other.branch_retired;
  branch_mispredicted += other.branch_mispredicted;
  l1d_accesses += other.l1d_accesses;
  l1d_misses += other.l1d_misses;
  l1i_accesses += other.l1i_accesses;
  l1i_misses += other.l1i_misses;
  l2_accesses += other.l2_accesses;
  l2_misses += other.l2_misses;
  bus_transactions += other.bus_transactions;
  bus_wait_cycles += other.bus_wait_cycles;
  coherence_invalidations += other.coherence_invalidations;
  prefetch_fills += other.prefetch_fills;
  return *this;
}

namespace {

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

double Counters::cpi() const { return ratio(clockticks, inst_retired); }

double Counters::l2mpi() const {
  return 100.0 * ratio(l2_misses, inst_retired);
}

double Counters::btpi() const {
  return 100.0 * ratio(bus_transactions, inst_retired);
}

double Counters::branch_frequency() const {
  return 100.0 * ratio(branch_retired, inst_retired);
}

double Counters::brmpr() const {
  return 100.0 * ratio(branch_mispredicted, branch_retired);
}

std::string Counters::to_string() const {
  return util::format(
      "CPI=%.2f L2MPI=%.3f%% BTPI=%.2f%% BrF=%.1f%% BrMPR=%.2f%% "
      "(inst=%llu l2m=%llu bus=%llu)",
      cpi(), l2mpi(), btpi(), branch_frequency(), brmpr(),
      static_cast<unsigned long long>(inst_retired),
      static_cast<unsigned long long>(l2_misses),
      static_cast<unsigned long long>(bus_transactions));
}

}  // namespace xaon::uarch
