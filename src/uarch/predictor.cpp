#include "xaon/uarch/predictor.hpp"

namespace xaon::uarch {

BranchPredictor::BranchPredictor(const PredictorConfig& config)
    : config_(config) {
  bimodal_.assign(1ull << config.bimodal_bits, 1);  // weakly not-taken
  gshare_.assign(1ull << config.gshare_bits, 1);
  chooser_.assign(1ull << config.bimodal_bits, 2);  // weakly prefer gshare
}

bool BranchPredictor::predict_and_update(std::uint32_t thread,
                                         std::uint64_t pc, bool taken) {
  const std::uint32_t t = thread & 1;
  const std::uint32_t h = config_.shared_history ? 0 : t;
  const std::uint64_t bi_mask = bimodal_.size() - 1;
  const std::uint64_t gs_mask = gshare_.size() - 1;
  const std::uint64_t hist_mask = (1ull << config_.history_bits) - 1;

  const std::uint64_t bi_idx = (pc >> 2) & bi_mask;
  const std::uint64_t gs_idx = ((pc >> 2) ^ history_[h]) & gs_mask;

  const bool bi_pred = counter_taken(bimodal_[bi_idx]);
  const bool gs_pred = counter_taken(gshare_[gs_idx]);
  bool prediction;
  if (config_.hybrid) {
    prediction = counter_taken(chooser_[bi_idx]) ? gs_pred : bi_pred;
  } else {
    prediction = gs_pred;
  }

  // Update components.
  bimodal_[bi_idx] = bump(bimodal_[bi_idx], taken);
  gshare_[gs_idx] = bump(gshare_[gs_idx], taken);
  if (config_.hybrid && bi_pred != gs_pred) {
    chooser_[bi_idx] = bump(chooser_[bi_idx], gs_pred == taken);
  }
  history_[h] = ((history_[h] << 1) | (taken ? 1 : 0)) & hist_mask;

  ++stats_[t].predictions;
  const bool mispredicted = prediction != taken;
  if (mispredicted) ++stats_[t].mispredictions;
  return mispredicted;
}

PredictorStats BranchPredictor::total_stats() const {
  PredictorStats out;
  for (const PredictorStats& s : stats_) {
    out.predictions += s.predictions;
    out.mispredictions += s.mispredictions;
  }
  return out;
}

void BranchPredictor::reset_stats() {
  stats_[0] = PredictorStats{};
  stats_[1] = PredictorStats{};
}

}  // namespace xaon::uarch
