#include "xaon/uarch/platform.hpp"

namespace xaon::uarch {

CoreArch pentium_m_arch() {
  CoreArch arch;
  arch.name = "Pentium M (Yonah-class)";
  arch.freq_ghz = 1.83;
  arch.uop_expansion = 1.0;
  // Wide dynamic execution: efficient issue, short pipeline.
  arch.issue_cycles_per_op = 0.75;
  arch.mispredict_penalty = 11;
  arch.l2_port_cycles = 6;
  arch.l1i = CacheConfig{32 * 1024, 64, 8};
  arch.l1d = CacheConfig{32 * 1024, 64, 8};
  arch.l1_latency_cycles = 3;
  arch.l2_latency_cycles = 10;
  arch.memory_latency_ns = 90;
  arch.load_stall_exposure = 0.65;
  arch.store_stall_exposure = 0.12;
  arch.ifetch_stall_exposure = 0.5;
  // Large hybrid predictor ("advanced branch prediction").
  arch.predictor.bimodal_bits = 13;
  arch.predictor.gshare_bits = 13;
  arch.predictor.history_bits = 13;
  arch.predictor.hybrid = true;
  // Smart Memory Access: two aggressive L2 prefetchers.
  arch.prefetch.enabled = true;
  arch.prefetch.streams = 16;
  arch.prefetch.degree = 1;
  arch.prefetch.train_hits = 3;
  return arch;
}

CoreArch xeon_netburst_arch() {
  CoreArch arch;
  arch.name = "Xeon (Netburst)";
  arch.freq_ghz = 3.16;
  // Netburst retires ~2x more uops per x86 op than P6-family cores.
  arch.uop_expansion = 1.9;
  // Deep 31-stage pipeline: poor issue efficiency per op at the high
  // clock, brutal mispredict penalty.
  arch.issue_cycles_per_op = 2.4;
  arch.mispredict_penalty = 30;
  arch.l2_port_cycles = 18;  // L2 access fully occupies the shared port
  // 12k-uop trace cache modeled as a small L1I; 16 KB L1D (Table 1).
  arch.l1i = CacheConfig{12 * 1024, 64, 6};
  arch.l1d = CacheConfig{16 * 1024, 64, 8};
  arch.l1_latency_cycles = 4;
  arch.l2_latency_cycles = 18;
  arch.memory_latency_ns = 110;
  arch.load_stall_exposure = 0.8;
  arch.store_stall_exposure = 0.15;
  arch.ifetch_stall_exposure = 0.5;
  // Smaller, non-hybrid predictor.
  arch.predictor.bimodal_bits = 10;
  arch.predictor.gshare_bits = 10;
  arch.predictor.history_bits = 10;
  arch.predictor.hybrid = true;  // much smaller tables than the PM hybrid
  arch.predictor.shared_history = true;  // SMT streams pollute the history
  arch.prefetch.enabled = false;
  return arch;
}

namespace {

PlatformConfig base_pm() {
  PlatformConfig p;
  p.arch = pentium_m_arch();
  p.l2 = CacheConfig{2 * 1024 * 1024, 64, 8};
  p.bus_freq_mhz = 667;
  return p;
}

PlatformConfig base_xeon() {
  PlatformConfig p;
  p.arch = xeon_netburst_arch();
  p.l2 = CacheConfig{1 * 1024 * 1024, 64, 8};
  p.bus_freq_mhz = 667;
  return p;
}

}  // namespace

PlatformConfig platform_1cpm() {
  PlatformConfig p = base_pm();
  p.notation = "1CPm";
  p.description = "Pentium M, one of two cores (maxcpus=1)";
  p.chips = 1;
  p.cores_per_chip = 1;
  return p;
}

PlatformConfig platform_2cpm() {
  PlatformConfig p = base_pm();
  p.notation = "2CPm";
  p.description = "Pentium M, both cores, shared 2MB L2 (maxcpus=2)";
  p.chips = 1;
  p.cores_per_chip = 2;
  return p;
}

PlatformConfig platform_1lpx() {
  PlatformConfig p = base_xeon();
  p.notation = "1LPx";
  p.description = "one Xeon, Hyper-Threading disabled";
  p.chips = 1;
  p.cores_per_chip = 1;
  return p;
}

PlatformConfig platform_2lpx() {
  PlatformConfig p = base_xeon();
  p.notation = "2LPx";
  p.description = "one Xeon, Hyper-Threading enabled (2 logical CPUs)";
  p.chips = 1;
  p.cores_per_chip = 1;
  p.smt = true;
  return p;
}

PlatformConfig platform_2ppx() {
  PlatformConfig p = base_xeon();
  p.notation = "2PPx";
  p.description = "two Xeon packages, HT disabled, shared FSB";
  p.chips = 2;
  p.cores_per_chip = 1;
  return p;
}

std::vector<PlatformConfig> all_platforms() {
  return {platform_1cpm(), platform_2cpm(), platform_1lpx(),
          platform_2lpx(), platform_2ppx()};
}

}  // namespace xaon::uarch
