#include "xaon/uarch/cache.hpp"

#include "xaon/util/assert.hpp"

namespace xaon::uarch {

namespace {

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  XAON_CHECK_MSG(is_pow2(config.line_bytes), "line size must be 2^k");
  XAON_CHECK_MSG(config.associativity > 0, "associativity must be > 0");
  const std::uint64_t sets = config.num_sets();
  XAON_CHECK_MSG(sets > 0 && is_pow2(sets),
                 "size/(line*assoc) must be a power of two");
  set_mask_ = sets - 1;
  ways_.resize(sets * config.associativity);
}

AccessResult Cache::touch(std::uint64_t addr, bool is_write,
                                 bool count) {
  const std::uint64_t line = line_of(addr);
  const std::uint64_t set = line & set_mask_;
  Way* base = &ways_[set * config_.associativity];
  AccessResult result;
  if (count) ++stats_.accesses;
  ++tick_;

  Way* lru_way = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.lru = tick_;
      way.dirty = way.dirty || is_write;
      result.hit = true;
      return result;
    }
    if (!way.valid) {
      lru_way = &way;  // prefer invalid ways
    } else if (lru_way->valid && way.lru < lru_way->lru) {
      lru_way = &way;
    }
  }
  // Miss: allocate into lru_way.
  if (count) ++stats_.misses;
  if (lru_way->valid) {
    ++stats_.evictions;
    result.evicted = true;
    result.victim_line = lru_way->tag;
    if (lru_way->dirty) {
      ++stats_.writebacks;
      result.writeback = true;
    }
  }
  lru_way->valid = true;
  lru_way->tag = line;
  lru_way->lru = tick_;
  lru_way->dirty = is_write;
  return result;
}

AccessResult Cache::access(std::uint64_t addr, bool is_write) {
  return touch(addr, is_write, /*count=*/true);
}

AccessResult Cache::fill(std::uint64_t addr) {
  return touch(addr, /*is_write=*/false, /*count=*/false);
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr / config_.line_bytes;
  const std::uint64_t set = line & set_mask_;
  const Way* base = &ways_[set * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == line) return true;
  }
  return false;
}

bool Cache::invalidate(std::uint64_t addr) {
  const std::uint64_t line = addr / config_.line_bytes;
  const std::uint64_t set = line & set_mask_;
  Way* base = &ways_[set * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == line) {
      base[w].valid = false;
      const bool was_dirty = base[w].dirty;
      base[w].dirty = false;
      return was_dirty;
    }
  }
  return false;
}

}  // namespace xaon::uarch
