#include "xaon/uarch/trace.hpp"

namespace xaon::uarch {

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.total = trace.size();
  for (const Op& op : trace) {
    switch (op.kind) {
      case OpKind::kAlu: ++s.alu; break;
      case OpKind::kLoad: ++s.loads; break;
      case OpKind::kStore: ++s.stores; break;
      case OpKind::kBranch:
        ++s.branches;
        if (op.taken) ++s.taken_branches;
        break;
    }
  }
  return s;
}

}  // namespace xaon::uarch
