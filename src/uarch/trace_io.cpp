#include "xaon/uarch/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace xaon::uarch {

namespace {

void put_u64(std::ostream& out, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(bytes), 8);
}

bool get_u64(std::istream& in, std::uint64_t* v) {
  unsigned char bytes[8];
  if (!in.read(reinterpret_cast<char*>(bytes), 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return true;
}

}  // namespace

bool save_trace(const Trace& trace, std::ostream& out) {
  out.write(kTraceMagic, sizeof(kTraceMagic));
  put_u64(out, trace.size());
  for (const Op& op : trace) {
    put_u64(out, op.pc);
    put_u64(out, op.addr);
    // kind(1) | size(1) | taken(1) | pad(5)
    unsigned char meta[8] = {};
    meta[0] = static_cast<unsigned char>(op.kind);
    meta[1] = op.size;
    meta[2] = op.taken ? 1 : 0;
    out.write(reinterpret_cast<const char*>(meta), 8);
  }
  return static_cast<bool>(out);
}

bool save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  return save_trace(trace, out);
}

TraceLoadResult load_trace(std::istream& in) {
  TraceLoadResult result;
  char magic[sizeof(kTraceMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    result.error = "bad magic: not a xaon trace file (or wrong version)";
    return result;
  }
  std::uint64_t count = 0;
  if (!get_u64(in, &count)) {
    result.error = "truncated header";
    return result;
  }
  // Sanity bound: a trace record is 24 bytes; refuse absurd counts
  // rather than attempting a 2^60-element reserve on a corrupt file.
  constexpr std::uint64_t kMaxOps = 1ull << 32;
  if (count > kMaxOps) {
    result.error = "implausible op count (corrupt header)";
    return result;
  }
  result.trace.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Op op;
    unsigned char meta[8];
    if (!get_u64(in, &op.pc) || !get_u64(in, &op.addr) ||
        !in.read(reinterpret_cast<char*>(meta), 8)) {
      result.error = "truncated at op " + std::to_string(i);
      result.trace.clear();
      return result;
    }
    if (meta[0] > static_cast<unsigned char>(OpKind::kBranch)) {
      result.error = "invalid op kind at op " + std::to_string(i);
      result.trace.clear();
      return result;
    }
    op.kind = static_cast<OpKind>(meta[0]);
    op.size = meta[1];
    op.taken = meta[2] != 0;
    result.trace.push_back(op);
  }
  result.ok = true;
  return result;
}

TraceLoadResult load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceLoadResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  return load_trace(in);
}

}  // namespace xaon::uarch
