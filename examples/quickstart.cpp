// Quickstart: the xaon public API in one tour — parse XML, evaluate
// XPath, validate against a schema, proxy an HTTP message through the
// AON pipeline, and run a workload on a simulated 2007-era platform.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "xaon/xaon.hpp"

using namespace xaon;

int main() {
  std::printf("xaon %s quickstart\n\n", kVersion);

  // --- 1. Parse an XML message -------------------------------------------
  const char* doc_text = R"(<order id="42">
    <customer>ACME Corp</customer>
    <item><sku>AB-123</sku><quantity>1</quantity><price>19.99</price></item>
    <item><sku>CD-456</sku><quantity>3</quantity><price>5.00</price></item>
  </order>)";
  auto parsed = xml::parse(doc_text);
  if (!parsed.ok) {
    std::printf("parse error: %s\n", parsed.error.to_string().c_str());
    return 1;
  }
  std::printf("1. parsed <%s> with %zu elements\n",
              std::string(parsed.document.root()->qname).c_str(),
              xml::count_elements(parsed.document.root()));

  // --- 2. Evaluate XPath (the paper's CBR expression) ---------------------
  auto quantity = xpath::XPath::compile("//quantity/text()");
  const bool route_primary =
      xpath::XPath::compile("//quantity/text() = '1'")
          .test(parsed.document.root());
  std::printf("2. //quantity/text() = \"%s\"; CBR routes to %s\n",
              quantity.string(parsed.document.root()).c_str(),
              route_primary ? "primary" : "error endpoint");

  // --- 3. Validate against an XSD -----------------------------------------
  auto loaded = xsd::load_schema(aon::order_schema_xsd());
  if (!loaded.ok) {
    std::printf("schema error: %s\n", loaded.error.c_str());
    return 1;
  }
  xsd::Validator validator(loaded.schema);
  const xsd::ElementDecl* decl =
      loaded.schema.find_global_element("", "order");
  auto verdict = validator.validate_element(parsed.document.root(), decl);
  std::printf("3. schema validation: %s\n",
              verdict.valid() ? "valid" : verdict.to_string().c_str());

  // --- 4. The full AON pipeline over HTTP ---------------------------------
  aon::Pipeline pipeline(aon::UseCase::kSchemaValidation);
  const std::string wire = aon::make_post_wire();
  const auto outcome = pipeline.process_wire(wire);
  std::printf("4. SV pipeline: HTTP %d, forwarded to %s (%s)\n",
              outcome.response.status, outcome.forwarded_to.c_str(),
              outcome.detail.c_str());

  // --- 5. Run the workload on simulated 2007 hardware ---------------------
  // Capture an instruction trace of the real processing above and replay
  // it on the dual-core Pentium M and the Hyper-Threaded Xeon.
  aon::CaptureConfig capture;
  capture.messages = 16;  // small demo trace
  const uarch::Trace trace =
      capture_use_case_trace(aon::UseCase::kSchemaValidation, capture);
  std::printf("5. captured %zu-instruction trace of 16 SV messages\n",
              trace.size());
  for (const auto& platform :
       {uarch::platform_1cpm(), uarch::platform_1lpx()}) {
    uarch::System system(platform);
    (void)system.run({&trace});           // warm caches
    const auto result = system.run({&trace});
    std::printf("   %-5s (%s): CPI %.2f, BrMPR %.2f%%, %.0f msg/s\n",
                platform.notation.c_str(), platform.arch.name.c_str(),
                result.total.cpi(), result.total.brmpr(),
                result.items_per_second(16));
  }
  std::printf("\nDone. See bench/ for the full paper reproduction.\n");
  return 0;
}
