// trace_inspector: capture, save, load and dissect workload traces —
// the debugging loupe for the reproduction. Shows the instruction mix,
// footprints and per-region access counts of any use case, and replays
// a saved trace on a chosen platform.
//
//   ./build/examples/trace_inspector --use_case=CBR --save=/tmp/cbr.trc
//   ./build/examples/trace_inspector --load=/tmp/cbr.trc --platform=2LPx

#include <cstdio>
#include <map>
#include <set>

#include "xaon/aon/capture.hpp"
#include "xaon/uarch/system.hpp"
#include "xaon/uarch/trace_io.hpp"
#include "xaon/util/flags.hpp"
#include "xaon/util/str.hpp"
#include "xaon/util/table.hpp"

using namespace xaon;

namespace {

aon::UseCase parse_use_case(const std::string& s) {
  if (s == "FR") return aon::UseCase::kForwardRequest;
  if (s == "CBR") return aon::UseCase::kContentBasedRouting;
  if (s == "DPI") return aon::UseCase::kDeepInspection;
  if (s == "SEC") return aon::UseCase::kMessageSecurity;
  return aon::UseCase::kSchemaValidation;
}

uarch::PlatformConfig parse_platform(const std::string& s) {
  for (const auto& p : uarch::all_platforms()) {
    if (p.notation == s) return p;
  }
  return uarch::platform_1cpm();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string use_case_name =
      flags.str("use_case", "CBR", "FR | CBR | SV | DPI | SEC");
  const std::string save_path =
      flags.str("save", "", "write the captured trace here");
  const std::string load_path =
      flags.str("load", "", "load a trace instead of capturing");
  const std::string platform_name =
      flags.str("platform", "1CPm", "1CPm | 2CPm | 1LPx | 2LPx | 2PPx");
  const auto messages = static_cast<std::uint32_t>(
      flags.i64("messages", 16, "messages to capture (0 = default)"));
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stderr);
    return 0;
  }

  uarch::Trace trace;
  if (!load_path.empty()) {
    auto loaded = uarch::load_trace(load_path);
    if (!loaded.ok) {
      std::fprintf(stderr, "load failed: %s\n", loaded.error.c_str());
      return 1;
    }
    trace = std::move(loaded.trace);
    std::printf("loaded %zu ops from %s\n", trace.size(),
                load_path.c_str());
  } else {
    aon::CaptureConfig config;
    config.messages = messages;
    std::printf("capturing %u %s messages...\n", messages,
                use_case_name.c_str());
    trace = capture_use_case_trace(parse_use_case(use_case_name), config);
  }

  // --- dissect -------------------------------------------------------------
  const uarch::TraceStats stats = uarch::compute_stats(trace);
  std::set<std::uint64_t> data_pages, code_lines;
  std::map<std::uint64_t, std::uint64_t> region_ops;  // by 256MB region
  for (const auto& op : trace) {
    code_lines.insert(op.pc / 64);
    if (op.kind == uarch::OpKind::kLoad ||
        op.kind == uarch::OpKind::kStore) {
      data_pages.insert(op.addr >> 12);
      ++region_ops[op.addr >> 28];
    }
  }

  util::TextTable table("trace anatomy");
  table.set_header({"Property", "Value"});
  table.add_row({"ops", std::to_string(stats.total)});
  table.add_row({"ALU / loads / stores / branches",
                 util::format("%llu / %llu / %llu / %llu",
                              (unsigned long long)stats.alu,
                              (unsigned long long)stats.loads,
                              (unsigned long long)stats.stores,
                              (unsigned long long)stats.branches)});
  table.add_row({"branch fraction",
                 util::format("%.1f%%", 100 * stats.branch_fraction())});
  table.add_row({"taken-branch share",
                 util::format("%.1f%%",
                              stats.branches
                                  ? 100.0 * stats.taken_branches /
                                        stats.branches
                                  : 0.0)});
  table.add_row({"data footprint",
                 util::format("%.1f KiB (%zu pages)",
                              data_pages.size() * 4096.0 / 1024,
                              data_pages.size())});
  table.add_row({"code footprint",
                 util::format("%.1f KiB (%zu lines)",
                              code_lines.size() * 64.0 / 1024,
                              code_lines.size())});
  table.print();

  util::TextTable regions("memory ops by 256 MiB region");
  regions.set_header({"Region base", "ops"});
  for (const auto& [region, n] : region_ops) {
    regions.add_row({util::format("0x%08llx",
                                  (unsigned long long)(region << 28)),
                     std::to_string(n)});
  }
  regions.print();

  if (!save_path.empty()) {
    if (!uarch::save_trace(trace, save_path)) {
      std::fprintf(stderr, "save failed: %s\n", save_path.c_str());
      return 1;
    }
    std::printf("saved to %s\n", save_path.c_str());
  }

  // --- replay --------------------------------------------------------------
  const uarch::PlatformConfig platform = parse_platform(platform_name);
  uarch::System system(platform);
  (void)system.run({&trace});
  const auto result = system.run({&trace});
  std::printf("\nreplay on %s: wall %.2f ms, %s\n",
              platform.notation.c_str(), result.wall_ns / 1e6,
              result.total.to_string().c_str());
  return 0;
}
