// netperf_sim: the netperf TCP_STREAM benchmark on the simulated
// network — sweep link rate, latency and host CPU cost and watch where
// the bottleneck moves (wire vs window vs CPU).
//
//   ./build/examples/netperf_sim --bandwidth_gbps=1 --latency_us=50

#include <cstdio>

#include "xaon/netsim/netperf.hpp"
#include "xaon/util/flags.hpp"
#include "xaon/util/str.hpp"
#include "xaon/util/table.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double gbps =
      flags.f64("bandwidth_gbps", 1.0, "link bandwidth in Gbit/s");
  const auto latency_us =
      flags.i64("latency_us", 50, "one-way propagation latency (us)");
  const auto mb = flags.i64("megabytes", 64, "bytes to stream (MiB)");
  const double cpu_ns_per_byte =
      flags.f64("cpu_ns_per_byte", 0.0, "host CPU cost per byte");
  const auto rwnd_kb =
      flags.i64("rwnd_kb", 256, "receive window (KiB)");
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stderr);
    return 0;
  }

  netsim::LinkConfig link = netsim::Link::gigabit_ethernet();
  link.bandwidth_bps = gbps * 1e9;
  link.latency_ns = latency_us * 1000;

  netsim::TcpConfig tcp;
  tcp.rwnd_bytes = static_cast<std::uint32_t>(rwnd_kb) * 1024;
  tcp.sender_cpu_ns_per_byte = cpu_ns_per_byte;
  tcp.receiver_cpu_ns_per_byte = cpu_ns_per_byte;

  netsim::CpuResource sender_cpu, receiver_cpu;
  const auto result = netsim::run_tcp_stream(
      link, tcp, static_cast<std::uint64_t>(mb) << 20,
      cpu_ns_per_byte > 0 ? &sender_cpu : nullptr,
      cpu_ns_per_byte > 0 ? &receiver_cpu : nullptr);

  util::TextTable table("netperf TCP_STREAM (simulated)");
  table.set_header({"Metric", "Value"});
  table.add_row({"goodput", util::format("%.1f Mbps", result.goodput_mbps)});
  table.add_row({"bytes delivered",
                 util::format("%.1f MiB",
                              static_cast<double>(result.bytes_delivered) /
                                  (1 << 20))});
  table.add_row({"duration", util::format("%.2f ms",
                                          static_cast<double>(
                                              result.duration_ns) /
                                              1e6)});
  table.add_row({"segments", std::to_string(result.tcp.segments_sent)});
  table.add_row({"final cwnd",
                 util::format("%.0f KiB",
                              result.tcp.cwnd_bytes / 1024.0)});
  table.add_row({"link utilization",
                 util::format("%.1f%%",
                              100.0 * result.data_link.utilization(
                                          result.duration_ns))});
  table.print();

  // Where is the bottleneck?
  const double wire_limit = gbps * 1e3 * (1460.0 / 1538.0);
  const double window_limit =
      static_cast<double>(tcp.rwnd_bytes) * 8.0 /
      (2.0 * static_cast<double>(link.latency_ns) * 1e-9) / 1e6;
  const double cpu_limit =
      cpu_ns_per_byte > 0 ? 8.0 / (cpu_ns_per_byte * 2) * 1e3 : 1e12;
  std::printf("\nlimits: wire %.0f Mbps, window/RTT %.0f Mbps, CPU %s\n",
              wire_limit, window_limit,
              cpu_ns_per_byte > 0
                  ? util::format("%.0f Mbps", cpu_limit).c_str()
                  : "unbounded");
  std::printf("bottleneck: %s\n",
              result.goodput_mbps > 0.9 * wire_limit          ? "the wire"
              : window_limit < wire_limit && cpu_limit > window_limit
                  ? "the window (raise --rwnd_kb or cut --latency_us)"
                  : "host CPU (--cpu_ns_per_byte)");
  return 0;
}
