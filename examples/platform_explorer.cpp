// platform_explorer: what-if studies beyond the paper's five
// configurations — sweep L2 size, toggle SMT, scale core count and
// watch the AON metrics respond. (The paper's "future work" asks about
// multi-core AON devices; this is the tool for that question.)
//
//   ./build/examples/platform_explorer --use_case=SV --sweep=l2
//   ./build/examples/platform_explorer --use_case=FR --sweep=cores

#include <cstdio>
#include <string>
#include <vector>

#include "xaon/aon/capture.hpp"
#include "xaon/uarch/system.hpp"
#include "xaon/util/flags.hpp"
#include "xaon/util/str.hpp"
#include "xaon/util/table.hpp"

using namespace xaon;

namespace {

aon::UseCase parse_use_case(const std::string& s) {
  if (s == "FR") return aon::UseCase::kForwardRequest;
  if (s == "CBR") return aon::UseCase::kContentBasedRouting;
  return aon::UseCase::kSchemaValidation;
}

struct Row {
  std::string label;
  double throughput;
  uarch::Counters counters;
};

Row run_config(const std::string& label, const uarch::PlatformConfig& p,
               const std::vector<const uarch::Trace*>& traces,
               double messages) {
  uarch::System system(p);
  (void)system.run(traces);
  const auto r = system.run(traces);
  return Row{label, r.items_per_second(messages), r.total};
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string use_case_name =
      flags.str("use_case", "SV", "FR | CBR | SV");
  const std::string sweep =
      flags.str("sweep", "l2", "l2 | cores | smt | bus");
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stderr);
    return 0;
  }
  const aon::UseCase use_case = parse_use_case(use_case_name);

  // One captured stream per potential hardware thread (up to 8 cores).
  std::printf("capturing %s message streams...\n", use_case_name.c_str());
  std::vector<uarch::Trace> traces;
  for (int t = 0; t < 8; ++t) {
    aon::CaptureConfig capture;
    capture.data_base =
        0x1000'0000ull + static_cast<std::uint64_t>(t) * 0x1000'0000ull;
    capture.message_seed = 1 + static_cast<std::uint64_t>(t) * 1000;
    traces.push_back(capture_use_case_trace(use_case, capture));
  }
  const double msgs_per_trace =
      static_cast<double>(aon::default_messages(use_case));

  util::TextTable table("platform explorer: " + use_case_name + " / " +
                        sweep + " sweep");
  table.set_header({"Config", "msgs/s", "CPI", "L2MPI (%)", "BTPI (%)"});
  table.set_tsv(true);
  std::vector<Row> rows;

  if (sweep == "l2") {
    for (const std::uint64_t kb : {512, 1024, 2048, 4096, 8192}) {
      uarch::PlatformConfig p = uarch::platform_2cpm();
      p.l2.size_bytes = kb * 1024;
      rows.push_back(run_config(util::format("2CPm, %llu KB shared L2",
                                             static_cast<unsigned long long>(kb)),
                                p, {&traces[0], &traces[1]},
                                2 * msgs_per_trace));
    }
  } else if (sweep == "cores") {
    for (const int cores : {1, 2, 4, 8}) {
      uarch::PlatformConfig p = uarch::platform_2cpm();
      p.cores_per_chip = cores;
      std::vector<const uarch::Trace*> ptrs;
      for (int t = 0; t < cores; ++t) ptrs.push_back(&traces[static_cast<std::size_t>(t)]);
      rows.push_back(run_config(util::format("%d-core PM, shared 2MB L2",
                                             cores),
                                p, ptrs, cores * msgs_per_trace));
    }
  } else if (sweep == "smt") {
    rows.push_back(run_config("Xeon, HT off", uarch::platform_1lpx(),
                              {&traces[0]}, msgs_per_trace));
    rows.push_back(run_config("Xeon, HT on", uarch::platform_2lpx(),
                              {&traces[0], &traces[1]},
                              2 * msgs_per_trace));
    rows.push_back(run_config("2x Xeon, HT off", uarch::platform_2ppx(),
                              {&traces[0], &traces[1]},
                              2 * msgs_per_trace));
  } else {  // bus
    for (const double mhz : {333.0, 667.0, 1333.0}) {
      uarch::PlatformConfig p = uarch::platform_2ppx();
      p.bus_freq_mhz = mhz;
      rows.push_back(run_config(util::format("2PPx, %.0f MHz FSB", mhz), p,
                                {&traces[0], &traces[1]},
                                2 * msgs_per_trace));
    }
  }

  for (const Row& r : rows) {
    table.add_row({r.label, util::format("%.0f", r.throughput),
                   util::format("%.2f", r.counters.cpi()),
                   util::format("%.3f", r.counters.l2mpi()),
                   util::format("%.2f", r.counters.btpi())});
  }
  table.print();
  return 0;
}
