// aon_gateway: the paper's "XML server application" running natively —
// a multithreaded message gateway (one worker per CPU, as in §3.2.1)
// pushed through all three use cases at full speed on the host.
//
//   ./build/examples/aon_gateway --workers=4 --messages=20000

#include <cstdio>

#include "xaon/aon/messages.hpp"
#include "xaon/aon/server.hpp"
#include "xaon/util/flags.hpp"
#include "xaon/util/table.hpp"
#include "xaon/util/str.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 2, "worker threads (the paper uses #CPUs)"));
  const auto total = static_cast<std::uint64_t>(
      flags.i64("messages", 20000, "messages to push through"));
  const auto msg_bytes = static_cast<std::size_t>(
      flags.i64("message_bytes", 5 * 1024, "message size (AONBench: 5KB)"));
  const bool include_invalid =
      flags.boolean("include_invalid", true,
                    "mix in schema-invalid messages (exercises SV errors)");
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stderr);
    return 0;
  }

  // Pre-build a mixed message set: quantity=1 / quantity!=1 (CBR's two
  // routes) and optionally schema-invalid messages (SV's error route).
  std::vector<std::string> wires;
  for (int i = 0; i < 32; ++i) {
    aon::MessageSpec spec;
    spec.seed = static_cast<std::uint64_t>(i) + 1;
    spec.target_bytes = msg_bytes;
    spec.quantity = (i % 2 == 0) ? 1 : 2 + (i % 7);
    spec.valid_for_schema = !include_invalid || (i % 8 != 7);
    wires.push_back(aon::make_post_wire(spec));
  }
  std::printf("gateway: %zu workers, %llu messages of ~%zu bytes\n\n",
              workers, static_cast<unsigned long long>(total), msg_bytes);

  util::TextTable table("AON gateway host-mode throughput");
  table.set_header({"Use case", "msgs/s", "MB/s", "primary", "error",
                    "rejected"});
  table.set_tsv(true);

  for (const auto use_case :
       {aon::UseCase::kForwardRequest, aon::UseCase::kContentBasedRouting,
        aon::UseCase::kSchemaValidation}) {
    aon::ServerConfig config;
    config.use_case = use_case;
    config.workers = workers;
    aon::Server server(config);
    const aon::LoadResult result = server.run_load(wires, total);
    table.add_row(
        {std::string(aon::use_case_notation(use_case)),
         util::format("%.0f", result.messages_per_second()),
         util::format("%.1f", result.messages_per_second() *
                                  static_cast<double>(msg_bytes) / 1e6),
         std::to_string(result.routed_primary),
         std::to_string(result.routed_error),
         std::to_string(result.failed)});
  }
  table.print();
  std::printf(
      "\nFR > CBR > SV throughput — the paper's workload spectrum, live "
      "on this host.\n");
  return 0;
}
